//! Fault-tolerant accuracy-oracle decorators.
//!
//! The paper's search farms child training out to a GPU cluster; at that
//! scale, evaluations fail for reasons that have nothing to do with the
//! architecture being scored — a node drops off, a job is preempted, a
//! training run diverges to NaN. This module supplies the two halves of
//! the fault model used by [`crate::search`]:
//!
//! * [`ResilientEvaluator`] — wraps any [`AccuracyEvaluator`] and absorbs
//!   *transient* faults (see [`FnasError::is_transient`]) with a budgeted,
//!   deterministic retry loop, while *quarantining* non-finite accuracies
//!   before they can reach the reward and poison the controller.
//! * [`FaultInjector`] — the adversary: wraps an oracle and injects
//!   transient errors, panics and NaN accuracies at configured rates,
//!   drawing from the caller-supplied RNG so a chaos run is exactly as
//!   reproducible as a clean one.
//!
//! Backoff is *virtual*: retry spacing is accounted in abstract ticks
//! ([`FaultStatsSnapshot::backoff_vticks`]) rather than slept on a wall
//! clock. Nothing in the retry decision path reads time, so the engine's
//! bit-identical-across-worker-counts invariant survives chaos testing.

use std::sync::atomic::{AtomicU64, Ordering};

use fnas_controller::arch::ChildArch;
use fnas_exec::Deadline;
use rand::RngCore;

use crate::evaluator::AccuracyEvaluator;
use crate::{FnasError, Result};

/// Retry budget and virtual-backoff schedule for transient oracle faults.
///
/// # Examples
///
/// ```
/// use fnas::resilience::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// assert!(p.backoff(0) < p.backoff(3));
/// // The schedule is capped.
/// assert_eq!(p.backoff(60), p.backoff(61));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-tries after the first attempt.
    pub max_retries: u32,
    /// Virtual backoff before the first retry, in ticks.
    pub base_ticks: u64,
    /// Multiplier applied per further retry (exponential backoff).
    pub multiplier: u64,
    /// Cap on a single backoff interval, in ticks.
    pub max_ticks: u64,
    /// Adaptive fail-fast cutover: once this many evaluations have
    /// *exhausted* their retry budget, further transient faults are not
    /// retried at all — a persistently flaky oracle fails fast instead of
    /// burning backoff ticks on every child. `0` (the default) disables
    /// adaptivity.
    ///
    /// **Determinism caveat:** the cutover reads shared fault counters, so
    /// under a worker pool *which* evaluation crosses the threshold
    /// depends on scheduling order. Runs that must be bit-identical across
    /// worker counts (the engine's default invariant, asserted by the
    /// chaos tests) should leave this at `0`; turn it on for long
    /// wall-clock-bound runs where failing fast matters more than replay.
    pub fail_fast_after: u64,
}

impl Default for RetryPolicy {
    /// Three retries with 1, 2, 4 tick spacing, capped at 64 ticks;
    /// adaptive fail-fast disabled.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_ticks: 1,
            multiplier: 2,
            max_ticks: 64,
            fail_fast_after: 0,
        }
    }
}

impl RetryPolicy {
    /// The virtual backoff charged before retry number `attempt`
    /// (0-based): `min(base · multiplier^attempt, max)`, saturating.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let factor = self.multiplier.saturating_pow(attempt);
        self.base_ticks.saturating_mul(factor).min(self.max_ticks)
    }

    /// Opts in to adaptive fail-fast after `exhausted_evals` budget
    /// exhaustions (`0` disables; see
    /// [`RetryPolicy::fail_fast_after`] for the determinism caveat).
    #[must_use]
    pub fn with_fail_fast_after(mut self, exhausted_evals: u64) -> Self {
        self.fail_fast_after = exhausted_evals;
        self
    }

    /// The retry budget in force given the oracle's fault history: the
    /// full [`RetryPolicy::max_retries`] normally, `0` once the fail-fast
    /// cutover has been reached.
    pub fn effective_retries(&self, stats: &FaultStatsSnapshot) -> u32 {
        if self.fail_fast_after > 0 && stats.exhausted >= self.fail_fast_after {
            0
        } else {
            self.max_retries
        }
    }
}

/// A plain-data snapshot of a [`ResilientEvaluator`]'s fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStatsSnapshot {
    /// Transient faults observed (each may or may not have been retried).
    pub transient_faults: u64,
    /// Retries actually performed.
    pub retries: u64,
    /// Evaluations whose budget ran out — the fault escaped to the caller.
    pub exhausted: u64,
    /// Non-finite accuracies quarantined into permanent faults.
    pub quarantined: u64,
    /// Total virtual backoff ticks charged across all retries.
    pub backoff_vticks: u64,
    /// Transient faults propagated *without* retry because the adaptive
    /// fail-fast cutover ([`RetryPolicy::fail_fast_after`]) was in force.
    pub failed_fast: u64,
}

#[derive(Debug, Default)]
struct FaultStats {
    transient_faults: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    quarantined: AtomicU64,
    backoff_vticks: AtomicU64,
    failed_fast: AtomicU64,
}

impl FaultStats {
    fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            transient_faults: self.transient_faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            backoff_vticks: self.backoff_vticks.load(Ordering::Relaxed),
            failed_fast: self.failed_fast.load(Ordering::Relaxed),
        }
    }
}

/// Retry/quarantine decorator around any accuracy oracle.
///
/// * **Transient** faults ([`FnasError::is_transient`]) are retried up to
///   the policy's budget, charging virtual backoff ticks per retry; when
///   the budget runs out the last fault propagates to the caller (which
///   records a failed trial — it never aborts the search).
/// * **Permanent** faults propagate immediately; retrying a deterministic
///   failure would only burn budget.
/// * **Non-finite** accuracies (`NaN`/`±∞`) are quarantined: converted to
///   a *permanent* [`FnasError::Oracle`] fault so they can never reach the
///   reward computation. See [`crate::search`] for the downstream NaN
///   guards this backstops.
///
/// Counters are atomic so one decorator can be shared across the batch
/// engine's worker threads.
///
/// # Examples
///
/// ```
/// use fnas::evaluator::{AccuracyEvaluator, SurrogateCalibration, SurrogateEvaluator};
/// use fnas::resilience::{ResilientEvaluator, RetryPolicy};
///
/// let inner = SurrogateEvaluator::new(SurrogateCalibration::mnist());
/// let oracle = ResilientEvaluator::new(Box::new(inner), RetryPolicy::default());
/// assert_eq!(oracle.name(), "resilient");
/// assert!(oracle.deterministic()); // delegates to the wrapped oracle
/// ```
#[derive(Debug)]
pub struct ResilientEvaluator {
    inner: Box<dyn AccuracyEvaluator>,
    policy: RetryPolicy,
    stats: FaultStats,
}

impl ResilientEvaluator {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: Box<dyn AccuracyEvaluator>, policy: RetryPolicy) -> Self {
        ResilientEvaluator {
            inner,
            policy,
            stats: FaultStats::default(),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }
}

impl ResilientEvaluator {
    fn retry_loop(
        &self,
        arch: &ChildArch,
        rng: &mut dyn RngCore,
        deadline: Option<&Deadline>,
    ) -> Result<f32> {
        // The adaptive budget is decided once per evaluation, from the
        // fault history as of entry: a mid-evaluation cutover elsewhere
        // never truncates a retry loop already underway.
        let budget = self.policy.effective_retries(&self.stats.snapshot());
        let mut attempt = 0u32;
        loop {
            match self.inner.evaluate_with_deadline(arch, rng, deadline) {
                Ok(acc) if acc.is_finite() => return Ok(acc),
                Ok(acc) => {
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    return Err(FnasError::Oracle {
                        what: format!("quarantined non-finite accuracy {acc}"),
                        transient: false,
                    });
                }
                Err(e) if e.is_transient() => {
                    self.stats.transient_faults.fetch_add(1, Ordering::Relaxed);
                    if attempt >= budget {
                        if budget < self.policy.max_retries {
                            self.stats.failed_fast.fetch_add(1, Ordering::Relaxed);
                        }
                        self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .backoff_vticks
                        .fetch_add(self.policy.backoff(attempt), Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl AccuracyEvaluator for ResilientEvaluator {
    fn evaluate(&self, arch: &ChildArch, rng: &mut dyn RngCore) -> Result<f32> {
        self.retry_loop(arch, rng, None)
    }

    /// The deadline spans the *whole* retry loop: each attempt re-charges
    /// the same budget, so retried timeouts drain it quickly and a stuck
    /// oracle cannot hide behind its own retries.
    fn evaluate_with_deadline(
        &self,
        arch: &ChildArch,
        rng: &mut dyn RngCore,
        deadline: Option<&Deadline>,
    ) -> Result<f32> {
        self.retry_loop(arch, rng, deadline)
    }

    fn name(&self) -> &'static str {
        "resilient"
    }

    /// Memoisation safety is the wrapped oracle's property: retrying does
    /// not change what a successful evaluation returns.
    fn deterministic(&self) -> bool {
        self.inner.deterministic()
    }

    fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        Some(self.stats.snapshot())
    }
}

/// Injection rates of the chaos adversary, as probabilities in `[0, 1]`.
///
/// The three faults are drawn from *disjoint* bands of one uniform roll,
/// so `panic_rate + transient_rate + nan_rate` must not exceed 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability an evaluation panics outright (worker-killing fault).
    pub panic_rate: f64,
    /// Probability of a transient [`FnasError::Oracle`] fault.
    pub transient_rate: f64,
    /// Probability the oracle returns `NaN` (diverged training run).
    pub nan_rate: f64,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        FaultPlan {
            panic_rate: 0.0,
            transient_rate: 0.0,
            nan_rate: 0.0,
        }
    }

    fn validate(&self) {
        let rates = [self.panic_rate, self.transient_rate, self.nan_rate];
        assert!(
            rates.iter().all(|r| (0.0..=1.0).contains(r)),
            "fault rates must be probabilities, got {rates:?}"
        );
        assert!(
            rates.iter().sum::<f64>() <= 1.0,
            "fault rates must sum to at most 1, got {rates:?}"
        );
    }
}

/// Deterministic fault-injecting oracle wrapper for chaos testing.
///
/// Each evaluation draws one `u64` from the *caller's* RNG — in the batch
/// engine that stream is seeded per `(run_seed, episode, child)` by
/// `fnas_exec::derive_child_seed` — and maps it to `[0, 1)`. The unit
/// interval is split into disjoint bands: panic, transient fault, NaN,
/// then the wrapped oracle. Because the roll rides the per-child stream,
/// the *same* children fault in the *same* way no matter how many workers
/// run the batch, which is what lets chaos runs assert bit-identical
/// results.
///
/// `deterministic()` is always `false`: the injected behaviour depends on
/// the RNG, so memoising around the injector would hide faults from the
/// very paths chaos testing exists to exercise.
#[derive(Debug)]
pub struct FaultInjector {
    inner: Box<dyn AccuracyEvaluator>,
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps `inner` with the given fault plan.
    ///
    /// # Panics
    ///
    /// Panics when rates are not probabilities or sum past 1.
    pub fn new(inner: Box<dyn AccuracyEvaluator>, plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector { inner, plan }
    }

    /// The injection plan in force.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Maps one RNG draw to a uniform `[0, 1)` double (53 mantissa bits).
    fn roll(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FaultInjector {
    fn inject_then(
        &self,
        arch: &ChildArch,
        rng: &mut dyn RngCore,
        deadline: Option<&Deadline>,
    ) -> Result<f32> {
        let roll = FaultInjector::roll(rng);
        let p = self.plan;
        if roll < p.panic_rate {
            panic!("fault injection: simulated evaluator crash");
        }
        if roll < p.panic_rate + p.transient_rate {
            return Err(FnasError::Oracle {
                what: "fault injection: simulated transient failure".to_string(),
                transient: true,
            });
        }
        if roll < p.panic_rate + p.transient_rate + p.nan_rate {
            return Ok(f32::NAN);
        }
        self.inner.evaluate_with_deadline(arch, rng, deadline)
    }
}

impl AccuracyEvaluator for FaultInjector {
    fn evaluate(&self, arch: &ChildArch, rng: &mut dyn RngCore) -> Result<f32> {
        self.inject_then(arch, rng, None)
    }

    fn evaluate_with_deadline(
        &self,
        arch: &ChildArch,
        rng: &mut dyn RngCore,
        deadline: Option<&Deadline>,
    ) -> Result<f32> {
        self.inject_then(arch, rng, deadline)
    }

    fn name(&self) -> &'static str {
        "fault-injector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{SurrogateCalibration, SurrogateEvaluator};
    use fnas_controller::arch::LayerChoice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicU32;

    fn arch() -> ChildArch {
        ChildArch::new(vec![LayerChoice {
            filter_size: 5,
            num_filters: 18,
        }])
        .unwrap()
    }

    /// Oracle scripted to fail `failures` times before succeeding.
    #[derive(Debug)]
    struct Flaky {
        failures: u32,
        calls: AtomicU32,
        transient: bool,
        then: f32,
    }

    impl Flaky {
        fn new(failures: u32, transient: bool, then: f32) -> Self {
            Flaky {
                failures,
                calls: AtomicU32::new(0),
                transient,
                then,
            }
        }
    }

    impl AccuracyEvaluator for Flaky {
        fn evaluate(&self, _arch: &ChildArch, _rng: &mut dyn RngCore) -> Result<f32> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call < self.failures {
                return Err(FnasError::Oracle {
                    what: format!("scripted failure {call}"),
                    transient: self.transient,
                });
            }
            Ok(self.then)
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ticks: 3,
            multiplier: 2,
            max_ticks: 20,
            fail_fast_after: 0,
        };
        assert_eq!(p.backoff(0), 3);
        assert_eq!(p.backoff(1), 6);
        assert_eq!(p.backoff(2), 12);
        assert_eq!(p.backoff(3), 20); // capped, not 24
        assert_eq!(p.backoff(63), 20); // saturating_pow, no overflow panic
    }

    #[test]
    fn transient_faults_are_retried_within_budget() {
        let oracle =
            ResilientEvaluator::new(Box::new(Flaky::new(2, true, 0.9)), RetryPolicy::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(oracle.evaluate(&arch(), &mut rng).unwrap(), 0.9);
        let s = oracle.fault_stats().unwrap();
        assert_eq!(s.transient_faults, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.exhausted, 0);
        // Default policy: first two backoffs are 1 and 2 ticks.
        assert_eq!(s.backoff_vticks, 3);
    }

    #[test]
    fn exhausted_budget_propagates_the_fault() {
        let oracle = ResilientEvaluator::new(
            Box::new(Flaky::new(10, true, 0.9)),
            RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let err = oracle.evaluate(&arch(), &mut rng).unwrap_err();
        assert!(err.is_transient());
        let s = oracle.fault_stats().unwrap();
        assert_eq!(s.retries, 2);
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.transient_faults, 3); // initial + 2 retries, all failed
    }

    #[test]
    fn fail_fast_cutover_stops_retrying_a_persistently_flaky_oracle() {
        // Always-transient oracle; two retries per evaluation; adaptive
        // fail-fast engages once two evaluations have exhausted their
        // budget.
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        }
        .with_fail_fast_after(2);
        let oracle = ResilientEvaluator::new(Box::new(Flaky::new(u32::MAX, true, 0.9)), policy);
        let mut rng = StdRng::seed_from_u64(0);

        // Evaluations 1 and 2: full budget — 2 retries each, then exhaust.
        assert!(oracle.evaluate(&arch(), &mut rng).is_err());
        assert!(oracle.evaluate(&arch(), &mut rng).is_err());
        let s = oracle.fault_stats().unwrap();
        assert_eq!(s.retries, 4);
        assert_eq!(s.exhausted, 2);
        assert_eq!(s.failed_fast, 0);

        // Evaluation 3: the cutover is in force — the fault propagates on
        // the first attempt, with no retries and no backoff charged.
        let before = s.backoff_vticks;
        let err = oracle.evaluate(&arch(), &mut rng).unwrap_err();
        assert!(err.is_transient());
        let s = oracle.fault_stats().unwrap();
        assert_eq!(s.retries, 4, "fail-fast must not retry");
        assert_eq!(s.exhausted, 3);
        assert_eq!(s.failed_fast, 1);
        assert_eq!(s.backoff_vticks, before, "fail-fast must not back off");
        assert_eq!(s.transient_faults, 3 + 3 + 1);
    }

    #[test]
    fn fail_fast_is_disabled_by_default() {
        let stats = FaultStatsSnapshot {
            exhausted: u64::MAX,
            ..FaultStatsSnapshot::default()
        };
        let p = RetryPolicy::default();
        assert_eq!(p.fail_fast_after, 0);
        assert_eq!(p.effective_retries(&stats), p.max_retries);
        // And below the threshold the full budget stays in force.
        let p = p.with_fail_fast_after(5);
        let calm = FaultStatsSnapshot {
            exhausted: 4,
            ..FaultStatsSnapshot::default()
        };
        assert_eq!(p.effective_retries(&calm), p.max_retries);
        assert_eq!(p.effective_retries(&stats), 0);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let oracle =
            ResilientEvaluator::new(Box::new(Flaky::new(10, false, 0.9)), RetryPolicy::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(oracle.evaluate(&arch(), &mut rng).is_err());
        let s = oracle.fault_stats().unwrap();
        assert_eq!(s.retries, 0);
        assert_eq!(s.transient_faults, 0);
    }

    #[test]
    fn non_finite_accuracies_are_quarantined_as_permanent() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let oracle =
                ResilientEvaluator::new(Box::new(Flaky::new(0, true, bad)), RetryPolicy::default());
            let mut rng = StdRng::seed_from_u64(0);
            let err = oracle.evaluate(&arch(), &mut rng).unwrap_err();
            assert!(!err.is_transient(), "quarantine must not be retried");
            assert!(err.to_string().contains("quarantined"));
            assert_eq!(oracle.fault_stats().unwrap().quarantined, 1);
        }
    }

    #[test]
    fn injector_is_deterministic_in_the_rng_stream() {
        let plan = FaultPlan {
            panic_rate: 0.0,
            transient_rate: 0.3,
            nan_rate: 0.2,
        };
        let surrogate = || Box::new(SurrogateEvaluator::new(SurrogateCalibration::mnist()));
        let run = || {
            let inj = FaultInjector::new(surrogate(), plan);
            (0..64u64)
                .map(|child| {
                    let mut rng = StdRng::seed_from_u64(fnas_exec::derive_child_seed(7, 0, child));
                    match inj.evaluate(&arch(), &mut rng) {
                        Ok(a) => format!("ok:{:08x}", a.to_bits()),
                        Err(e) => format!("err:{e}"),
                    }
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        // With these rates the 64-child sample must contain every outcome.
        assert!(a.iter().any(|s| s.starts_with("ok:")));
        assert!(a.iter().any(|s| s.contains("transient")));
        assert!(a
            .iter()
            .any(|s| s.contains("7fc00000") || s == "ok:7fc00000"));
        // The injector must not be memoised.
        assert!(!FaultInjector::new(surrogate(), plan).deterministic());
    }

    #[test]
    fn injector_panics_at_the_configured_band() {
        let inj = FaultInjector::new(
            Box::new(SurrogateEvaluator::new(SurrogateCalibration::mnist())),
            FaultPlan {
                panic_rate: 1.0,
                transient_rate: 0.0,
                nan_rate: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inj.evaluate(&arch(), &mut rng);
        }));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overlapping_fault_bands_are_rejected() {
        let _ = FaultInjector::new(
            Box::new(SurrogateEvaluator::new(SurrogateCalibration::mnist())),
            FaultPlan {
                panic_rate: 0.6,
                transient_rate: 0.6,
                nan_rate: 0.0,
            },
        );
    }

    #[test]
    fn resilient_composes_over_the_injector() {
        // The canonical chaos stack: resilient(injector(surrogate)).
        // Transient injections are absorbed by retries (each retry re-rolls
        // because the rng stream advances), so most children still succeed.
        let inj = FaultInjector::new(
            Box::new(SurrogateEvaluator::new(SurrogateCalibration::mnist())),
            FaultPlan {
                panic_rate: 0.0,
                transient_rate: 0.4,
                nan_rate: 0.0,
            },
        );
        let oracle = ResilientEvaluator::new(Box::new(inj), RetryPolicy::default());
        let mut ok = 0;
        for child in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(fnas_exec::derive_child_seed(3, 0, child));
            if oracle.evaluate(&arch(), &mut rng).is_ok() {
                ok += 1;
            }
        }
        let s = oracle.fault_stats().unwrap();
        assert!(s.retries > 0, "injector should have triggered retries");
        assert!(ok > 24, "retries should rescue most children, got {ok}/32");
    }
}
