//! Plain-text report emitters (markdown tables and CSV files).
//!
//! The benchmark harness regenerates each of the paper's tables and figures
//! as a markdown table on stdout plus a CSV file for plotting; this module
//! holds the shared formatting. No serialisation crates are involved — the
//! values are simple scalars and strings.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Duration;

use fnas_exec::TelemetrySnapshot;

use crate::Result;

/// A rectangular table with a header row.
///
/// # Examples
///
/// ```
/// use fnas::report::Table;
///
/// let mut t = Table::new(vec!["method", "latency (ms)"]);
/// t.push_row(vec!["NAS".to_string(), "19.70".to_string()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| NAS | 19.70 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (RFC-4180 quoting for fields containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())?;
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `99.42%`.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats an improvement factor, e.g. `11.13x`.
pub fn factor(x: f64) -> String {
    format!("{x:.2}x")
}

/// Renders a [`TelemetrySnapshot`] as a two-column metric table — the
/// format the throughput bench and the examples print after a search.
///
/// # Examples
///
/// ```
/// use fnas::report::telemetry_table;
/// use fnas_exec::TelemetrySnapshot;
///
/// let md = telemetry_table(&TelemetrySnapshot::default()).to_markdown();
/// assert!(md.contains("children sampled"));
/// assert!(md.contains("latency cache hit rate"));
/// ```
pub fn telemetry_table(t: &TelemetrySnapshot) -> Table {
    let ms = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    let mut table = Table::new(vec!["metric", "value"]);
    let mut push = |metric: &str, value: String| {
        table.push_row(vec![metric.to_string(), value]);
    };
    push("children sampled", t.children_sampled.to_string());
    push("children pruned", t.children_pruned.to_string());
    push("children trained", t.children_trained.to_string());
    push("children unbuildable", t.children_unbuildable.to_string());
    push("children failed", t.children_failed.to_string());
    push("episodes", t.episodes.to_string());
    push("panics caught", t.panics_caught.to_string());
    push("oracle retries", t.retries.to_string());
    push("quarantined accuracies", t.quarantined.to_string());
    push("checkpoints written", t.checkpoints_written.to_string());
    push("prune rate", pct(t.prune_rate() as f32));
    push("analyzer calls", t.analyzer_calls.to_string());
    push("train calls", t.train_calls.to_string());
    push(
        "latency cache hit rate",
        pct(t.latency_cache_hit_rate() as f32),
    );
    push(
        "accuracy cache hit rate",
        pct(t.accuracy_cache_hit_rate() as f32),
    );
    push("store hits", t.store_hits.to_string());
    push("store misses", t.store_misses.to_string());
    push("store hit rate", pct(t.store_hit_rate() as f32));
    push("store writes", t.store_writes.to_string());
    push("store evictions", t.store_evictions.to_string());
    push("store bytes on disk", t.store_bytes.to_string());
    for (name, ns) in t.pass_ns() {
        push(&format!("pass {name} (ms)"), ms(Duration::from_nanos(ns)));
    }
    push("partitions built", t.partitions_built.to_string());
    push(
        "cross-partition events",
        t.cross_partition_events.to_string(),
    );
    push("sample wall (ms)", ms(t.sample_time));
    push("latency wall (ms)", ms(t.latency_time));
    push("accuracy wall (ms)", ms(t.accuracy_time));
    push("update wall (ms)", ms(t.update_time));
    push("total wall (ms)", ms(t.total_time()));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1".to_string(), "2".to_string()]);
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 3);
        assert!(md.starts_with("| a | b |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["a,b".to_string()]);
        t.push_row(vec!["say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1".to_string()]);
    }

    #[test]
    fn write_csv_round_trips() {
        let mut t = Table::new(vec!["h"]);
        t.push_row(vec!["v".to_string()]);
        let dir = std::env::temp_dir().join("fnas-report-test");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.9942), "99.42%");
        assert_eq!(factor(11.131), "11.13x");
    }

    #[test]
    fn telemetry_table_has_counter_rate_and_wall_rows() {
        let snap = TelemetrySnapshot {
            children_sampled: 10,
            children_pruned: 4,
            children_failed: 1,
            panics_caught: 1,
            retries: 3,
            quarantined: 2,
            checkpoints_written: 5,
            latency_cache_hits: 3,
            latency_cache_misses: 1,
            store_hits: 9,
            store_misses: 1,
            store_writes: 2,
            store_evictions: 1,
            store_bytes: 4096,
            pass_partition_ns: 2_500_000,
            partitions_built: 4,
            cross_partition_events: 96,
            ..Default::default()
        };
        let t = telemetry_table(&snap);
        assert_eq!(t.len(), 33);
        let md = t.to_markdown();
        assert!(md.contains("| children sampled | 10 |"));
        assert!(md.contains("| prune rate | 40.00% |"));
        assert!(md.contains("| latency cache hit rate | 75.00% |"));
        assert!(md.contains("| children failed | 1 |"));
        assert!(md.contains("| panics caught | 1 |"));
        assert!(md.contains("| oracle retries | 3 |"));
        assert!(md.contains("| quarantined accuracies | 2 |"));
        assert!(md.contains("| checkpoints written | 5 |"));
        assert!(md.contains("| store hit rate | 90.00% |"));
        assert!(md.contains("| store writes | 2 |"));
        assert!(md.contains("| store evictions | 1 |"));
        assert!(md.contains("| store bytes on disk | 4096 |"));
        assert!(md.contains("| pass partition (ms) | 2.5 |"));
        assert!(md.contains("| pass sim (ms) | 0.0 |"));
        assert!(md.contains("| partitions built | 4 |"));
        assert!(md.contains("| cross-partition events | 96 |"));
        assert!(md.contains("total wall (ms)"));
    }
}
