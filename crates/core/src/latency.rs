//! Cached child-network latency evaluation through the FNAS tool.
//!
//! Every controller proposal goes FNAS-Design → FNAS-GG → FNAS-Sched →
//! FNAS-Analyzer (components ➀–➃) to get an inference latency *without
//! training and without HLS/RTL generation* — the property that makes the
//! whole framework fast. Results are memoised per architecture because the
//! controller frequently revisits promising regions of the space; the memo
//! is a lock-striped [`ShardedCache`] so the batch engine's workers can
//! share one evaluator without serialising on a single map lock.

use std::sync::atomic::{AtomicU64, Ordering};

use fnas_controller::arch::ChildArch;
use fnas_exec::ShardedCache;
use fnas_fpga::analyzer::analyze;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::sched::FnasScheduler;
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;
use fnas_fpga::Millis;

use crate::mapping::arch_to_network;
use crate::Result;

/// Latency oracle for child architectures on a fixed platform.
///
/// Thread-safe: [`LatencyEvaluator::latency`] takes `&self` and may be
/// called from several workers at once against one shared evaluator. The
/// analyzer-call and cache counters are monotonic `u64`s, wide enough not
/// to overflow even on 32-bit targets.
///
/// # Examples
///
/// ```
/// use fnas::latency::LatencyEvaluator;
/// use fnas_controller::arch::{ChildArch, LayerChoice};
/// use fnas_fpga::device::FpgaDevice;
///
/// # fn main() -> Result<(), fnas::FnasError> {
/// let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
/// let arch = ChildArch::new(vec![LayerChoice { filter_size: 5, num_filters: 9 }])?;
/// let ms = eval.latency(&arch)?;
/// assert!(ms.get() > 0.0);
/// assert_eq!(eval.analyzer_calls(), 1);
/// let _ = eval.latency(&arch)?; // cached
/// assert_eq!(eval.analyzer_calls(), 1);
/// assert_eq!((eval.cache_hits(), eval.cache_misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LatencyEvaluator {
    cluster: FpgaCluster,
    input: (usize, usize, usize),
    cache: ShardedCache<ChildArch, Millis>,
    analyzer_calls: AtomicU64,
}

impl LatencyEvaluator {
    /// Creates an evaluator for a single device and input shape
    /// `(channels, height, width)`.
    pub fn new(device: FpgaDevice, input: (usize, usize, usize)) -> Self {
        LatencyEvaluator::on_cluster(FpgaCluster::single(device), input)
    }

    /// Creates an evaluator for a multi-FPGA cluster.
    pub fn on_cluster(cluster: FpgaCluster, input: (usize, usize, usize)) -> Self {
        LatencyEvaluator {
            cluster,
            input,
            cache: ShardedCache::new(),
            analyzer_calls: AtomicU64::new(0),
        }
    }

    /// The target platform.
    pub fn cluster(&self) -> &FpgaCluster {
        &self.cluster
    }

    /// The per-example input shape.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// Number of uncached analyzer invocations so far (the FNAS tool's
    /// per-child cost in the search-cost model).
    pub fn analyzer_calls(&self) -> u64 {
        self.analyzer_calls.load(Ordering::Relaxed)
    }

    /// Lookups answered from the memo cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Lookups that had to run the analyzer (or failed trying).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Analytic latency of `arch` (Eq. 5), memoised.
    ///
    /// The analyzer runs outside the cache's shard lock, so concurrent
    /// callers with distinct architectures never wait on each other; two
    /// callers racing on the *same* uncached architecture may both analyze
    /// it (the results are identical — the analyzer is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors — e.g. a kernel that does not
    /// fit the input, or a pipeline that exceeds the platform's resources.
    pub fn latency(&self, arch: &ChildArch) -> Result<Millis> {
        self.cache.get_or_try_insert_with(arch, || {
            let design = self.design(arch)?;
            let report = analyze(&design)?;
            self.analyzer_calls.fetch_add(1, Ordering::Relaxed);
            Ok(report.latency)
        })
    }

    /// The full pipeline design for `arch` (exposed for inspection and the
    /// scheduler benches).
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors.
    pub fn design(&self, arch: &ChildArch) -> Result<PipelineDesign> {
        let network = arch_to_network(arch, self.input)?;
        Ok(PipelineDesign::generate_on_cluster(
            &network,
            &self.cluster,
        )?)
    }

    /// Cycle-accurate simulated latency under the FNAS schedule (used to
    /// validate the analytic model; roughly 100× slower than
    /// [`LatencyEvaluator::latency`]).
    ///
    /// # Errors
    ///
    /// Propagates design, graph and simulation errors.
    pub fn simulated_latency(&self, arch: &ChildArch) -> Result<Millis> {
        let design = self.design(arch)?;
        let graph = TileTaskGraph::from_design(&design)?;
        let schedule = FnasScheduler::new().schedule(&graph);
        let report = simulate_design(&design, &graph, &schedule)?;
        Ok(report.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnas_controller::arch::LayerChoice;

    fn arch(choices: &[(usize, usize)]) -> ChildArch {
        ChildArch::new(
            choices
                .iter()
                .map(|&(filter_size, num_filters)| LayerChoice {
                    filter_size,
                    num_filters,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn bigger_architectures_take_longer() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let small = eval.latency(&arch(&[(5, 9)])).unwrap();
        let large = eval
            .latency(&arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]))
            .unwrap();
        assert!(large.get() > small.get() * 3.0, "{small} vs {large}");
    }

    #[test]
    fn cache_avoids_repeat_analysis() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let a = arch(&[(5, 18), (3, 36)]);
        let first = eval.latency(&a).unwrap();
        let again = eval.latency(&a).unwrap();
        assert_eq!(first.get(), again.get());
        assert_eq!(eval.analyzer_calls(), 1);
        assert_eq!(eval.cache_hits(), 1);
        assert_eq!(eval.cache_misses(), 1);
    }

    #[test]
    fn concurrent_lookups_agree_with_sequential() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let archs: Vec<ChildArch> = (0..8)
            .map(|i| arch(&[(3 + 2 * (i % 3), 9 + 9 * (i % 4))]))
            .collect();
        let expected: Vec<f64> = archs
            .iter()
            .map(|a| {
                LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
                    .latency(a)
                    .unwrap()
                    .get()
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (a, &want) in archs.iter().zip(&expected) {
                        assert_eq!(eval.latency(a).unwrap().get(), want);
                    }
                });
            }
        });
        // 8 distinct architectures: one analysis each would be ideal, but
        // racing first lookups may duplicate work — never produce different
        // answers. The cache still bounds total calls by thread count.
        assert!(eval.analyzer_calls() >= 8 && eval.analyzer_calls() <= 4 * 8);
    }

    #[test]
    fn low_end_device_is_slower_on_dsp_bound_networks() {
        // The 7A50T's calibrated clock is slightly higher than the 7Z020's
        // (small designs close timing more easily), so the comparison is
        // made where it matters: a network big enough to be DSP-bound.
        let a = arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]);
        let hi = LatencyEvaluator::new(FpgaDevice::xc7z020(), (1, 28, 28));
        let lo = LatencyEvaluator::new(FpgaDevice::xc7a50t(), (1, 28, 28));
        assert!(lo.latency(&a).unwrap().get() > hi.latency(&a).unwrap().get());
    }

    #[test]
    fn simulated_latency_close_to_analytic() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let analytic = eval.latency(&a).unwrap();
        let simulated = eval.simulated_latency(&a).unwrap();
        assert!(
            simulated.get() >= analytic.get() * 0.99,
            "analytic {analytic} should lower-bound simulated {simulated}"
        );
        assert!(
            simulated.get() <= analytic.get() * 2.0,
            "bound too loose: {analytic} vs {simulated}"
        );
    }

    #[test]
    fn impossible_arch_is_an_error() {
        // An even 14-kernel on a unit extent cannot be realised even with
        // half padding (1 + 2·6 = 13 < 14).
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 1, 1));
        assert!(eval.latency(&arch(&[(14, 9)])).is_err());
    }
}
