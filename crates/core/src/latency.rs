//! Cached child-network latency evaluation through the FNAS tool.
//!
//! Every controller proposal goes FNAS-Design → FNAS-GG → FNAS-Sched →
//! FNAS-Analyzer (components ➀–➃) to get an inference latency *without
//! training and without HLS/RTL generation* — the property that makes the
//! whole framework fast. Results are memoised per architecture because the
//! controller frequently revisits promising regions of the space.

use std::collections::HashMap;

use fnas_controller::arch::ChildArch;
use fnas_fpga::analyzer::analyze;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::sched::FnasScheduler;
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;
use fnas_fpga::Millis;

use crate::mapping::arch_to_network;
use crate::Result;

/// Latency oracle for child architectures on a fixed platform.
///
/// # Examples
///
/// ```
/// use fnas::latency::LatencyEvaluator;
/// use fnas_controller::arch::{ChildArch, LayerChoice};
/// use fnas_fpga::device::FpgaDevice;
///
/// # fn main() -> Result<(), fnas::FnasError> {
/// let mut eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
/// let arch = ChildArch::new(vec![LayerChoice { filter_size: 5, num_filters: 9 }])?;
/// let ms = eval.latency(&arch)?;
/// assert!(ms.get() > 0.0);
/// assert_eq!(eval.analyzer_calls(), 1);
/// let _ = eval.latency(&arch)?; // cached
/// assert_eq!(eval.analyzer_calls(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LatencyEvaluator {
    cluster: FpgaCluster,
    input: (usize, usize, usize),
    cache: HashMap<ChildArch, Millis>,
    analyzer_calls: usize,
}

impl LatencyEvaluator {
    /// Creates an evaluator for a single device and input shape
    /// `(channels, height, width)`.
    pub fn new(device: FpgaDevice, input: (usize, usize, usize)) -> Self {
        LatencyEvaluator::on_cluster(FpgaCluster::single(device), input)
    }

    /// Creates an evaluator for a multi-FPGA cluster.
    pub fn on_cluster(cluster: FpgaCluster, input: (usize, usize, usize)) -> Self {
        LatencyEvaluator {
            cluster,
            input,
            cache: HashMap::new(),
            analyzer_calls: 0,
        }
    }

    /// The target platform.
    pub fn cluster(&self) -> &FpgaCluster {
        &self.cluster
    }

    /// The per-example input shape.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// Number of uncached analyzer invocations so far (the FNAS tool's
    /// per-child cost in the search-cost model).
    pub fn analyzer_calls(&self) -> usize {
        self.analyzer_calls
    }

    /// Analytic latency of `arch` (Eq. 5), memoised.
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors — e.g. a kernel that does not
    /// fit the input, or a pipeline that exceeds the platform's resources.
    pub fn latency(&mut self, arch: &ChildArch) -> Result<Millis> {
        if let Some(&ms) = self.cache.get(arch) {
            return Ok(ms);
        }
        let design = self.design(arch)?;
        let report = analyze(&design)?;
        self.analyzer_calls += 1;
        self.cache.insert(arch.clone(), report.latency);
        Ok(report.latency)
    }

    /// The full pipeline design for `arch` (exposed for inspection and the
    /// scheduler benches).
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors.
    pub fn design(&self, arch: &ChildArch) -> Result<PipelineDesign> {
        let network = arch_to_network(arch, self.input)?;
        Ok(PipelineDesign::generate_on_cluster(&network, &self.cluster)?)
    }

    /// Cycle-accurate simulated latency under the FNAS schedule (used to
    /// validate the analytic model; roughly 100× slower than
    /// [`LatencyEvaluator::latency`]).
    ///
    /// # Errors
    ///
    /// Propagates design, graph and simulation errors.
    pub fn simulated_latency(&self, arch: &ChildArch) -> Result<Millis> {
        let design = self.design(arch)?;
        let graph = TileTaskGraph::from_design(&design)?;
        let schedule = FnasScheduler::new().schedule(&graph);
        let report = simulate_design(&design, &graph, &schedule)?;
        Ok(report.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnas_controller::arch::LayerChoice;

    fn arch(choices: &[(usize, usize)]) -> ChildArch {
        ChildArch::new(
            choices
                .iter()
                .map(|&(filter_size, num_filters)| LayerChoice {
                    filter_size,
                    num_filters,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn bigger_architectures_take_longer() {
        let mut eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let small = eval.latency(&arch(&[(5, 9)])).unwrap();
        let large = eval
            .latency(&arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]))
            .unwrap();
        assert!(large.get() > small.get() * 3.0, "{small} vs {large}");
    }

    #[test]
    fn cache_avoids_repeat_analysis() {
        let mut eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let a = arch(&[(5, 18), (3, 36)]);
        let first = eval.latency(&a).unwrap();
        let again = eval.latency(&a).unwrap();
        assert_eq!(first.get(), again.get());
        assert_eq!(eval.analyzer_calls(), 1);
    }

    #[test]
    fn low_end_device_is_slower_on_dsp_bound_networks() {
        // The 7A50T's calibrated clock is slightly higher than the 7Z020's
        // (small designs close timing more easily), so the comparison is
        // made where it matters: a network big enough to be DSP-bound.
        let a = arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]);
        let mut hi = LatencyEvaluator::new(FpgaDevice::xc7z020(), (1, 28, 28));
        let mut lo = LatencyEvaluator::new(FpgaDevice::xc7a50t(), (1, 28, 28));
        assert!(lo.latency(&a).unwrap().get() > hi.latency(&a).unwrap().get());
    }

    #[test]
    fn simulated_latency_close_to_analytic() {
        let mut eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let analytic = eval.latency(&a).unwrap();
        let simulated = eval.simulated_latency(&a).unwrap();
        assert!(
            simulated.get() >= analytic.get() * 0.99,
            "analytic {analytic} should lower-bound simulated {simulated}"
        );
        assert!(
            simulated.get() <= analytic.get() * 2.0,
            "bound too loose: {analytic} vs {simulated}"
        );
    }

    #[test]
    fn impossible_arch_is_an_error() {
        // An even 14-kernel on a unit extent cannot be realised even with
        // half padding (1 + 2·6 = 13 < 14).
        let mut eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 1, 1));
        assert!(eval.latency(&arch(&[(14, 9)])).is_err());
    }
}
