//! Staged, cached child-network latency evaluation through the FNAS tool.
//!
//! Every controller proposal goes FNAS-Design → FNAS-GG → FNAS-Sched →
//! FNAS-Analyzer (components ➀–➃) to get an inference latency *without
//! training and without HLS/RTL generation* — the property that makes the
//! whole framework fast. The evaluator memoises that pipeline at **stage
//! granularity**: a [`HwArtifacts`] record per architecture (design built
//! once, graph + schedule materialised lazily), an [`AnalyzerReport`] per
//! architecture, and a simulated latency per architecture — each in its
//! own lock-striped [`ShardedCache`] with single-flight dedup, so the
//! batch engine's workers share one evaluator without serialising on a
//! single map lock and without ever rebuilding a stage another consumer
//! already produced. Backends are selected per call through the
//! [`LatencyModel`] trait ([`Analytic`] / [`Simulated`] /
//! [`PartitionedSim`]).
//!
//! The evaluator also meters the pass pipeline: per-pass wall time
//! (design / taskgraph / partition / schedule / sim) and the partitioned
//! simulator's region statistics are accumulated into [`PassCounters`]
//! for the search telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fnas_controller::arch::ChildArch;
use fnas_exec::{Executor, ShardedCache};
use fnas_fpga::analyzer::AnalyzerReport;
use fnas_fpga::artifacts::{HwArtifacts, LatencyModel};
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::passes::{canonical_pipeline_fingerprint, DEFAULT_PARTITIONS};
use fnas_fpga::Millis;
use fnas_store::{digest128, Backend, CacheKey, NullStore, Store, StoreCounters};

pub use fnas_fpga::artifacts::{Analytic, PartitionedSim, Simulated};

/// Accumulated pass-pipeline work performed by one evaluator: wall time
/// per pass plus the partitioned simulator's region statistics. Counts
/// only *uncached* executions (memo and store hits charge nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounters {
    /// Nanoseconds spent in the `design` pass.
    pub design_ns: u64,
    /// Nanoseconds spent in the `taskgraph` pass.
    pub graph_ns: u64,
    /// Nanoseconds spent in the `partition` pass.
    pub partition_ns: u64,
    /// Nanoseconds spent in the `schedule` pass.
    pub schedule_ns: u64,
    /// Nanoseconds spent in the `sim` pass (either backend).
    pub sim_ns: u64,
    /// Regions built by partitioned simulation runs.
    pub partitions_built: u64,
    /// Tile messages settled through cross-partition queues.
    pub cross_partition_events: u64,
}

use crate::deploy::DeploymentReport;
use crate::mapping::arch_to_network;
use crate::persist;
use crate::Result;

/// Latency oracle for child architectures on a fixed platform.
///
/// Thread-safe: every lookup takes `&self` and may be called from several
/// workers at once against one shared evaluator. The stage counters
/// ([`LatencyEvaluator::design_builds`],
/// [`LatencyEvaluator::analyzer_calls`], [`LatencyEvaluator::sim_calls`])
/// are monotonic `u64`s, wide enough not to overflow even on 32-bit
/// targets, and count *uncached* stage executions — with single-flight
/// memoisation each architecture contributes at most one to each.
///
/// # Examples
///
/// ```
/// use fnas::latency::LatencyEvaluator;
/// use fnas_controller::arch::{ChildArch, LayerChoice};
/// use fnas_fpga::device::FpgaDevice;
///
/// # fn main() -> Result<(), fnas::FnasError> {
/// let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
/// let arch = ChildArch::new(vec![LayerChoice { filter_size: 5, num_filters: 9 }])?;
/// let ms = eval.latency(&arch)?;
/// assert!(ms.get() > 0.0);
/// assert_eq!(eval.analyzer_calls(), 1);
/// let _ = eval.latency(&arch)?; // cached
/// assert_eq!(eval.analyzer_calls(), 1);
/// assert_eq!((eval.cache_hits(), eval.cache_misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LatencyEvaluator {
    cluster: FpgaCluster,
    input: (usize, usize, usize),
    /// Stage 1–3 record per architecture (design eager, graph + schedule
    /// lazy inside the artifact).
    artifacts: ShardedCache<ChildArch, Arc<HwArtifacts>>,
    /// Stage 4 (analytic) result per architecture.
    reports: ShardedCache<ChildArch, Arc<AnalyzerReport>>,
    /// Cycle-accurate latency per architecture.
    simulated: ShardedCache<ChildArch, Millis>,
    /// Persistent L2 consulted on L1 misses (DESIGN.md §14). Defaults to
    /// the inert [`NullStore`], so persistence is strictly opt-in.
    store: Arc<dyn Store>,
    /// Digest of the cluster's canonical encoding, fixed at construction.
    device_digest: u128,
    /// Canonical pass-pipeline fingerprint, fixed at construction.
    pipeline_digest: u64,
    design_builds: AtomicU64,
    analyzer_calls: AtomicU64,
    sim_calls: AtomicU64,
    pass_design_ns: AtomicU64,
    pass_graph_ns: AtomicU64,
    pass_partition_ns: AtomicU64,
    pass_schedule_ns: AtomicU64,
    pass_sim_ns: AtomicU64,
    partitions_built: AtomicU64,
    cross_partition_events: AtomicU64,
}

impl LatencyEvaluator {
    /// Creates an evaluator for a single device and input shape
    /// `(channels, height, width)`.
    pub fn new(device: FpgaDevice, input: (usize, usize, usize)) -> Self {
        LatencyEvaluator::on_cluster(FpgaCluster::single(device), input)
    }

    /// Creates an evaluator for a multi-FPGA cluster.
    pub fn on_cluster(cluster: FpgaCluster, input: (usize, usize, usize)) -> Self {
        let device_digest = digest128(&persist::cluster_bytes(&cluster));
        LatencyEvaluator {
            cluster,
            input,
            artifacts: ShardedCache::new(),
            reports: ShardedCache::new(),
            simulated: ShardedCache::new(),
            store: Arc::new(NullStore),
            device_digest,
            pipeline_digest: canonical_pipeline_fingerprint(),
            design_builds: AtomicU64::new(0),
            analyzer_calls: AtomicU64::new(0),
            sim_calls: AtomicU64::new(0),
            pass_design_ns: AtomicU64::new(0),
            pass_graph_ns: AtomicU64::new(0),
            pass_partition_ns: AtomicU64::new(0),
            pass_schedule_ns: AtomicU64::new(0),
            pass_sim_ns: AtomicU64::new(0),
            partitions_built: AtomicU64::new(0),
            cross_partition_events: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent store as the L2 under the in-memory caches.
    ///
    /// Lookup order becomes L1 (sharded in-memory) → L2 (`store`) →
    /// compute, with write-through to the store on compute. The store is
    /// purely a cache: it never changes results (records are
    /// checksum-verified and key-matched, and a bad record is recomputed),
    /// only how often the design/analyzer/simulator stages actually run.
    pub fn set_store(&mut self, store: Arc<dyn Store>) {
        self.store = store;
    }

    /// Builder-style variant of [`LatencyEvaluator::set_store`].
    #[must_use]
    pub fn with_store(mut self, store: Arc<dyn Store>) -> Self {
        self.set_store(store);
        self
    }

    /// The attached persistent store (the inert default unless
    /// [`LatencyEvaluator::set_store`] was called).
    pub fn store(&self) -> &Arc<dyn Store> {
        &self.store
    }

    /// Traffic counters of the attached store handle (all zero for the
    /// default [`NullStore`]).
    pub fn store_counters(&self) -> StoreCounters {
        self.store.counters()
    }

    /// The store key for `arch` under `backend` on this evaluator's
    /// platform and input shape.
    fn store_key(&self, arch: &ChildArch, backend: Backend) -> CacheKey {
        CacheKey::new(
            digest128(&persist::arch_bytes(arch, self.input)),
            self.device_digest,
            self.pipeline_digest,
            backend,
        )
    }

    /// Claims the artifact's one-shot lowering timings (taskgraph /
    /// partition / schedule) into the pass counters; a no-op when another
    /// path already claimed them.
    fn charge_lowering(&self, artifacts: &HwArtifacts) {
        if let Some(t) = artifacts.claim_lowering_timings() {
            self.pass_graph_ns.fetch_add(t.graph_ns, Ordering::Relaxed);
            self.pass_partition_ns
                .fetch_add(t.partition_ns, Ordering::Relaxed);
            self.pass_schedule_ns
                .fetch_add(t.schedule_ns, Ordering::Relaxed);
        }
    }

    /// The target platform.
    pub fn cluster(&self) -> &FpgaCluster {
        &self.cluster
    }

    /// The per-example input shape.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// Number of uncached FNAS-Design runs so far — with the staged cache,
    /// at most one per architecture across the latency, simulated and
    /// deploy paths combined.
    pub fn design_builds(&self) -> u64 {
        self.design_builds.load(Ordering::Relaxed)
    }

    /// Number of uncached analyzer invocations so far (the FNAS tool's
    /// per-child cost in the search-cost model).
    pub fn analyzer_calls(&self) -> u64 {
        self.analyzer_calls.load(Ordering::Relaxed)
    }

    /// Number of uncached cycle-accurate simulations so far.
    pub fn sim_calls(&self) -> u64 {
        self.sim_calls.load(Ordering::Relaxed)
    }

    /// Accumulated pass-pipeline work (per-pass wall time and partitioned
    /// simulation statistics) performed by this evaluator so far.
    pub fn pass_counters(&self) -> PassCounters {
        PassCounters {
            design_ns: self.pass_design_ns.load(Ordering::Relaxed),
            graph_ns: self.pass_graph_ns.load(Ordering::Relaxed),
            partition_ns: self.pass_partition_ns.load(Ordering::Relaxed),
            schedule_ns: self.pass_schedule_ns.load(Ordering::Relaxed),
            sim_ns: self.pass_sim_ns.load(Ordering::Relaxed),
            partitions_built: self.partitions_built.load(Ordering::Relaxed),
            cross_partition_events: self.cross_partition_events.load(Ordering::Relaxed),
        }
    }

    /// Analytic-latency lookups answered from the memo cache.
    pub fn cache_hits(&self) -> u64 {
        self.reports.hits()
    }

    /// Analytic-latency lookups that had to run the analyzer (or failed
    /// trying).
    pub fn cache_misses(&self) -> u64 {
        self.reports.misses()
    }

    /// The staged artifact record for `arch`, memoised. The design is
    /// built on the first call from *any* path (latency, simulation,
    /// deployment, benches) and shared by all of them.
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors — e.g. a kernel that does not
    /// fit the input, or a pipeline that exceeds the platform's resources.
    /// Errors are not cached, so a transiently failing lookup can retry.
    pub fn artifacts(&self, arch: &ChildArch) -> Result<Arc<HwArtifacts>> {
        self.artifacts.get_or_try_insert_with(arch, || {
            let network = arch_to_network(arch, self.input)?;
            let t0 = Instant::now();
            let artifacts = HwArtifacts::build(&network, &self.cluster)?;
            self.pass_design_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.design_builds.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(artifacts))
        })
    }

    /// The memoised analyzer report for `arch` (Eqs. 2–5).
    ///
    /// On an L1 miss the persistent store is consulted before any pipeline
    /// stage runs — a valid record skips the design build *and* the
    /// analyzer. On a store miss the report is computed and written
    /// through. The single-flight guarantee covers the disk path too:
    /// racing callers share one store read or one computation.
    ///
    /// # Errors
    ///
    /// Propagates mapping, design and analysis errors.
    pub fn analyzer_report(&self, arch: &ChildArch) -> Result<Arc<AnalyzerReport>> {
        self.reports.get_or_try_insert_with(arch, || {
            let key = self.store_key(arch, Backend::Analytic);
            if let Some(report) = self
                .store
                .get(&key)
                .and_then(|b| persist::decode_report(&b))
            {
                return Ok(Arc::new(report));
            }
            let artifacts = self.artifacts(arch)?;
            let report = artifacts.analyze()?;
            self.analyzer_calls.fetch_add(1, Ordering::Relaxed);
            if self.store.enabled() {
                self.store.put(&key, &persist::encode_report(&report));
            }
            Ok(Arc::new(report))
        })
    }

    /// Analytic latency of `arch` (Eq. 5), memoised.
    ///
    /// The analyzer runs outside the cache's shard lock, so concurrent
    /// callers with distinct architectures never wait on each other, and
    /// lookups are single-flight: callers racing on the *same* uncached
    /// architecture share one analysis.
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors — e.g. a kernel that does not
    /// fit the input, or a pipeline that exceeds the platform's resources.
    pub fn latency(&self, arch: &ChildArch) -> Result<Millis> {
        Ok(self.analyzer_report(arch)?.latency)
    }

    /// The full pipeline design for `arch` (exposed for inspection and the
    /// scheduler benches), cloned out of the shared artifact record.
    ///
    /// # Errors
    ///
    /// Propagates mapping and design errors.
    pub fn design(&self, arch: &ChildArch) -> Result<PipelineDesign> {
        Ok(self.artifacts(arch)?.design().clone())
    }

    /// Cycle-accurate simulated latency under the FNAS schedule (used to
    /// validate the analytic model; roughly 100× slower than
    /// [`LatencyEvaluator::latency`]), memoised. Reuses the staged
    /// artifact, so the design and task graph are not rebuilt when the
    /// analytic path already produced them.
    ///
    /// # Errors
    ///
    /// Propagates design, graph and simulation errors.
    pub fn simulated_latency(&self, arch: &ChildArch) -> Result<Millis> {
        self.simulated.get_or_try_insert_with(arch, || {
            let key = self.store_key(arch, Backend::Simulated);
            if let Some(ms) = self
                .store
                .get(&key)
                .and_then(|b| persist::decode_millis(&b))
            {
                return Ok(ms);
            }
            let artifacts = self.artifacts(arch)?;
            let t0 = Instant::now();
            let report = artifacts.simulate()?;
            self.pass_sim_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.charge_lowering(&artifacts);
            self.sim_calls.fetch_add(1, Ordering::Relaxed);
            if self.store.enabled() {
                self.store
                    .put(&key, &persist::encode_millis(report.latency));
            }
            Ok(report.latency)
        })
    }

    /// Cycle-accurate simulated latency on the partitioned parallel
    /// backend, memoised. Byte-identical to
    /// [`LatencyEvaluator::simulated_latency`] (the parallel simulator is
    /// pinned equal to the single-threaded one), so it soundly shares the
    /// same memo cache and [`Backend::Simulated`] store records — a result
    /// computed by either path serves both.
    ///
    /// # Errors
    ///
    /// Propagates design, graph and simulation errors.
    pub fn partitioned_latency(&self, arch: &ChildArch) -> Result<Millis> {
        self.simulated.get_or_try_insert_with(arch, || {
            let key = self.store_key(arch, Backend::Simulated);
            if let Some(ms) = self
                .store
                .get(&key)
                .and_then(|b| persist::decode_millis(&b))
            {
                return Ok(ms);
            }
            let artifacts = self.artifacts(arch)?;
            let executor = Executor::with_workers(DEFAULT_PARTITIONS);
            let t0 = Instant::now();
            let (report, stats) = artifacts.simulate_partitioned(&executor)?;
            self.pass_sim_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.charge_lowering(&artifacts);
            self.partitions_built
                .fetch_add(stats.partitions_built, Ordering::Relaxed);
            self.cross_partition_events
                .fetch_add(stats.cross_partition_events, Ordering::Relaxed);
            self.sim_calls.fetch_add(1, Ordering::Relaxed);
            if self.store.enabled() {
                self.store
                    .put(&key, &persist::encode_millis(report.latency));
            }
            Ok(report.latency)
        })
    }

    /// Latency of `arch` under a caller-chosen backend.
    ///
    /// The built-in backends dispatch to the memoised paths
    /// ([`Analytic`] → [`LatencyEvaluator::latency`], [`Simulated`] →
    /// [`LatencyEvaluator::simulated_latency`], [`PartitionedSim`] →
    /// [`LatencyEvaluator::partitioned_latency`]); custom models run
    /// uncached over the shared (still memoised) artifact record.
    ///
    /// # Errors
    ///
    /// Propagates failures of the pipeline stages the backend consumes.
    pub fn latency_with(&self, arch: &ChildArch, model: &dyn LatencyModel) -> Result<Millis> {
        match model.name() {
            "analytic" => self.latency(arch),
            "simulated" => self.simulated_latency(arch),
            "partitioned-sim" => self.partitioned_latency(arch),
            _ => Ok(model.latency(self.artifacts(arch)?.as_ref())?),
        }
    }

    /// The full deployment record for `arch`, reusing the memoised design,
    /// task graph, schedule and analyzer report — so deploying an
    /// architecture the search already evaluated costs only the traced
    /// simulation.
    ///
    /// # Errors
    ///
    /// Propagates mapping, design, analysis and simulation errors.
    pub fn deploy(&self, arch: &ChildArch) -> Result<DeploymentReport> {
        let artifacts = self.artifacts(arch)?;
        let report = self.analyzer_report(arch)?;
        DeploymentReport::from_artifacts(arch, &artifacts, (*report).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnas_controller::arch::LayerChoice;

    fn arch(choices: &[(usize, usize)]) -> ChildArch {
        ChildArch::new(
            choices
                .iter()
                .map(|&(filter_size, num_filters)| LayerChoice {
                    filter_size,
                    num_filters,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn bigger_architectures_take_longer() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let small = eval.latency(&arch(&[(5, 9)])).unwrap();
        let large = eval
            .latency(&arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]))
            .unwrap();
        assert!(large.get() > small.get() * 3.0, "{small} vs {large}");
    }

    #[test]
    fn cache_avoids_repeat_analysis() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let a = arch(&[(5, 18), (3, 36)]);
        let first = eval.latency(&a).unwrap();
        let again = eval.latency(&a).unwrap();
        assert_eq!(first.get(), again.get());
        assert_eq!(eval.analyzer_calls(), 1);
        assert_eq!(eval.cache_hits(), 1);
        assert_eq!(eval.cache_misses(), 1);
    }

    #[test]
    fn concurrent_lookups_agree_with_sequential() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let archs: Vec<ChildArch> = (0..8)
            .map(|i| arch(&[(3 + 2 * (i % 3), 9 + 9 * (i % 4))]))
            .collect();
        let expected: Vec<f64> = archs
            .iter()
            .map(|a| {
                LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
                    .latency(a)
                    .unwrap()
                    .get()
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (a, &want) in archs.iter().zip(&expected) {
                        assert_eq!(eval.latency(a).unwrap().get(), want);
                    }
                });
            }
        });
        // 8 distinct architectures: single-flight memoisation guarantees
        // exactly one analysis each, even when first lookups race.
        assert_eq!(eval.analyzer_calls(), 8);
        assert_eq!(eval.design_builds(), 8);
    }

    #[test]
    fn low_end_device_is_slower_on_dsp_bound_networks() {
        // The 7A50T's calibrated clock is slightly higher than the 7Z020's
        // (small designs close timing more easily), so the comparison is
        // made where it matters: a network big enough to be DSP-bound.
        let a = arch(&[(7, 36), (7, 36), (7, 36), (7, 36)]);
        let hi = LatencyEvaluator::new(FpgaDevice::xc7z020(), (1, 28, 28));
        let lo = LatencyEvaluator::new(FpgaDevice::xc7a50t(), (1, 28, 28));
        assert!(lo.latency(&a).unwrap().get() > hi.latency(&a).unwrap().get());
    }

    #[test]
    fn simulated_latency_close_to_analytic() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let analytic = eval.latency(&a).unwrap();
        let simulated = eval.simulated_latency(&a).unwrap();
        assert!(
            simulated.get() >= analytic.get() * 0.99,
            "analytic {analytic} should lower-bound simulated {simulated}"
        );
        assert!(
            simulated.get() <= analytic.get() * 2.0,
            "bound too loose: {analytic} vs {simulated}"
        );
    }

    #[test]
    fn design_is_built_at_most_once_across_all_paths() {
        // The acceptance pin for the staged pipeline: latency + simulated
        // + deploy on the same architecture share one FNAS-Design run,
        // one analyzer call and one simulation.
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let analytic = eval.latency(&a).unwrap();
        let simulated = eval.simulated_latency(&a).unwrap();
        let deployed = eval.deploy(&a).unwrap();
        let _ = eval.design(&a).unwrap();
        let _ = eval.latency(&a).unwrap();
        let _ = eval.simulated_latency(&a).unwrap();
        assert_eq!(eval.design_builds(), 1, "design must be generated once");
        assert_eq!(eval.analyzer_calls(), 1, "analyzer must run once");
        assert_eq!(eval.sim_calls(), 1, "simulator must run once");
        assert_eq!(deployed.analytic_latency().get(), analytic.get());
        assert_eq!(deployed.simulated_latency().get(), simulated.get());
    }

    #[test]
    fn latency_with_dispatches_to_the_memoised_backends() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18)]);
        let analytic = eval.latency_with(&a, &Analytic).unwrap();
        let simulated = eval.latency_with(&a, &Simulated).unwrap();
        assert_eq!(analytic.get(), eval.latency(&a).unwrap().get());
        assert_eq!(simulated.get(), eval.simulated_latency(&a).unwrap().get());
        assert_eq!(eval.design_builds(), 1);
        assert_eq!(eval.analyzer_calls(), 1);
        assert_eq!(eval.sim_calls(), 1);

        // A custom backend runs uncached but still reuses the artifact.
        #[derive(Debug)]
        struct Doubled;
        impl LatencyModel for Doubled {
            fn latency(
                &self,
                artifacts: &fnas_fpga::artifacts::HwArtifacts,
            ) -> fnas_fpga::Result<Millis> {
                Ok(Millis::new(artifacts.analyze()?.latency.get() * 2.0))
            }
            fn name(&self) -> &'static str {
                "doubled"
            }
        }
        let doubled = eval.latency_with(&a, &Doubled).unwrap();
        assert_eq!(doubled.get(), analytic.get() * 2.0);
        assert_eq!(eval.design_builds(), 1, "custom backend reuses artifact");
    }

    #[test]
    fn impossible_arch_is_an_error() {
        // An even 14-kernel on a unit extent cannot be realised even with
        // half padding (1 + 2·6 = 13 < 14).
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 1, 1));
        assert!(eval.latency(&arch(&[(14, 9)])).is_err());
    }

    fn scratch_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fnas-latency-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_store_skips_design_analyzer_and_simulator() {
        use fnas_store::DiskStore;
        let dir = scratch_store("warm");
        let a = arch(&[(5, 18), (3, 18)]);

        let cold = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14))
            .with_store(Arc::new(DiskStore::open(&dir).unwrap()));
        let analytic = cold.latency(&a).unwrap();
        let simulated = cold.simulated_latency(&a).unwrap();
        assert_eq!(cold.design_builds(), 1);
        let cold_counters = cold.store_counters();
        assert_eq!(cold_counters.hits, 0);
        assert_eq!(cold_counters.writes, 2); // one analytic + one simulated record

        // A fresh evaluator + fresh store handle on the same directory
        // models a second worker process: cold L1, warm L2.
        let warm = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14))
            .with_store(Arc::new(DiskStore::open(&dir).unwrap()));
        assert_eq!(
            warm.latency(&a).unwrap().get().to_bits(),
            analytic.get().to_bits()
        );
        assert_eq!(
            warm.simulated_latency(&a).unwrap().get().to_bits(),
            simulated.get().to_bits()
        );
        assert_eq!(warm.design_builds(), 0, "design served from the store");
        assert_eq!(warm.analyzer_calls(), 0);
        assert_eq!(warm.sim_calls(), 0);
        let warm_counters = warm.store_counters();
        assert_eq!((warm_counters.hits, warm_counters.misses), (2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_record_falls_back_to_compute() {
        use fnas_store::{Backend, DiskStore};
        let dir = scratch_store("corrupt");
        let a = arch(&[(5, 9)]);
        let store: Arc<dyn fnas_store::Store> = Arc::new(DiskStore::open(&dir).unwrap());
        let cold =
            LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28)).with_store(Arc::clone(&store));
        let expected = cold.latency(&a).unwrap();

        // Truncate the analytic record on disk.
        let key = cold.store_key(&a, Backend::Analytic);
        let path = dir.join(key.relative_path());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let warm = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
            .with_store(Arc::new(DiskStore::open(&dir).unwrap()));
        assert_eq!(warm.latency(&a).unwrap().get(), expected.get());
        assert_eq!(warm.design_builds(), 1, "bad record forces a recompute");
        let counters = warm.store_counters();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.writes, 0, "existing path is not overwritten");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_results_are_bit_identical_to_direct_compute() {
        use fnas_store::DiskStore;
        let dir = scratch_store("ident");
        let archs: Vec<ChildArch> = (0..6)
            .map(|i| arch(&[(3 + 2 * (i % 3), 9 + 9 * (i % 4)), (3, 18)]))
            .collect();
        let plain = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        let stored = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
            .with_store(Arc::new(DiskStore::open(&dir).unwrap()));
        let warm = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
            .with_store(Arc::new(DiskStore::open(&dir).unwrap()));
        for a in &archs {
            let want = plain.latency(a).unwrap().get().to_bits();
            assert_eq!(stored.latency(a).unwrap().get().to_bits(), want);
        }
        for a in &archs {
            let want = plain.latency(a).unwrap().get().to_bits();
            assert_eq!(warm.latency(a).unwrap().get().to_bits(), want);
        }
        assert_eq!(warm.design_builds(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioned_latency_is_bit_identical_to_simulated() {
        let a = arch(&[(5, 18), (3, 18), (3, 36)]);
        let single = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let parallel = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let want = single.simulated_latency(&a).unwrap();
        let got = parallel.partitioned_latency(&a).unwrap();
        assert_eq!(got.get().to_bits(), want.get().to_bits());

        let counters = parallel.pass_counters();
        assert!(counters.partitions_built >= 1, "{counters:?}");
        assert!(counters.sim_ns > 0, "{counters:?}");
        assert!(counters.graph_ns > 0, "{counters:?}");
        assert_eq!(single.pass_counters().partitions_built, 0);

        // Both backends share the memo cache: the partitioned result now
        // serves the plain simulated path without a second simulation.
        assert_eq!(
            parallel.simulated_latency(&a).unwrap().get().to_bits(),
            want.get().to_bits()
        );
        assert_eq!(parallel.sim_calls(), 1);
    }

    #[test]
    fn latency_with_dispatches_the_partitioned_backend() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let via_model = eval.latency_with(&a, &PartitionedSim::default()).unwrap();
        assert_eq!(
            via_model.get().to_bits(),
            eval.partitioned_latency(&a).unwrap().get().to_bits()
        );
        assert_eq!(eval.sim_calls(), 1, "dispatch must hit the memoised path");
        assert!(eval.pass_counters().partitions_built >= 1);
    }

    #[test]
    fn lowering_timings_are_charged_once_per_architecture() {
        let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 14, 14));
        let a = arch(&[(5, 18), (3, 18)]);
        let _ = eval.simulated_latency(&a).unwrap();
        let first = eval.pass_counters();
        assert!(first.graph_ns > 0 && first.schedule_ns > 0, "{first:?}");
        // Forcing the scheduled stage again must not double-charge the
        // lowering passes (they are claimed once per artifact).
        let _ = eval.deploy(&a).unwrap();
        let second = eval.pass_counters();
        assert_eq!(second.graph_ns, first.graph_ns);
        assert_eq!(second.partition_ns, first.partition_ns);
        assert_eq!(second.schedule_ns, first.schedule_ns);
    }
}
