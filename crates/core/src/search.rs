//! The search loops: the NAS baseline of \[16\] and FNAS with early pruning.
//!
//! Both loops share the controller, the dataset and the accuracy oracle;
//! they differ exactly where the paper says they do:
//!
//! * **NAS** trains *every* sampled child and rewards `A − b`;
//! * **FNAS** first runs the FNAS tool to get the child's latency `L`; if
//!   `L > rL` the child is **not trained** and receives the negative reward
//!   of Eq. (1), otherwise it is trained and rewarded `(A − b) + L/rL`.
//!
//! The search cost (Table 1's "search time") accumulates per the
//! [`CostModel`]: full training cost for trained children, one analyzer
//! call for pruned ones.

use std::path::{Path, PathBuf};

use fnas_controller::arch::ChildArch;
use fnas_controller::reinforce::{EmaBaseline, ReinforceTrainer, DEFAULT_LR};
use fnas_controller::rnn::PolicyRnn;
use fnas_exec::{derive_child_seed, Executor, Phase, SearchTelemetry, ShardedCache};
use fnas_fpga::device::FpgaCluster;
use fnas_fpga::Millis;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub use fnas_exec::TelemetrySnapshot;

use crate::checkpoint::SearchCheckpoint;
use crate::cost::{CostModel, SearchCost};
use crate::evaluator::{AccuracyEvaluator, SurrogateEvaluator, TrainedEvaluator};
use crate::experiment::ExperimentPreset;
use crate::latency::LatencyEvaluator;
use crate::mapping::arch_to_network;
use crate::report::{pct, Table};
use crate::resilience::FaultStatsSnapshot;
use crate::{FnasError, Result};

/// Which search the loop runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchMode {
    /// Accuracy-only NAS \[16\] (the baseline).
    Nas,
    /// FPGA-implementation aware search with the given latency budget.
    Fnas {
        /// The required latency `rL`.
        required: Millis,
    },
}

impl SearchMode {
    /// The latency budget, if this is an FNAS run.
    pub fn required_latency(&self) -> Option<Millis> {
        match self {
            SearchMode::Nas => None,
            SearchMode::Fnas { required } => Some(*required),
        }
    }
}

/// Configuration of one search run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    preset: ExperimentPreset,
    mode: SearchMode,
    seed: u64,
    baseline_decay: f32,
    controller_lr: f32,
    entropy_weight: f32,
    prune: bool,
    cluster: Option<FpgaCluster>,
    required_accuracy: Option<f32>,
}

impl SearchConfig {
    /// A NAS-baseline run over `preset`.
    pub fn nas(preset: ExperimentPreset) -> Self {
        SearchConfig {
            preset,
            mode: SearchMode::Nas,
            seed: 0xF0A5,
            baseline_decay: 0.8,
            controller_lr: DEFAULT_LR,
            entropy_weight: 0.02,
            prune: true,
            cluster: None,
            required_accuracy: None,
        }
    }

    /// An FNAS run over `preset` with a latency budget in milliseconds.
    pub fn fnas(preset: ExperimentPreset, required_ms: f64) -> Self {
        SearchConfig {
            preset,
            mode: SearchMode::Fnas {
                required: Millis::new(required_ms),
            },
            seed: 0xF0A5,
            baseline_decay: 0.8,
            controller_lr: DEFAULT_LR,
            entropy_weight: 0.02,
            prune: true,
            cluster: None,
            required_accuracy: None,
        }
    }

    /// Replaces the RNG seed (controller init and sampling).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the controller learning rate.
    #[must_use]
    pub fn with_controller_lr(mut self, lr: f32) -> Self {
        self.controller_lr = lr;
        self
    }

    /// Replaces the controller entropy bonus (0 disables it).
    #[must_use]
    pub fn with_entropy_weight(mut self, weight: f32) -> Self {
        self.entropy_weight = weight;
        self
    }

    /// The controller learning rate.
    pub fn controller_lr(&self) -> f32 {
        self.controller_lr
    }

    /// The controller entropy bonus weight.
    pub fn entropy_weight(&self) -> f32 {
        self.entropy_weight
    }

    /// Ablation: when `false`, latency-violating children still receive the
    /// negative Eq. (1) reward but are *trained anyway* (and billed for it),
    /// isolating how much of FNAS's speedup comes from early pruning.
    #[must_use]
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Whether latency-violating children are pruned without training.
    pub fn pruning(&self) -> bool {
        self.prune
    }

    /// Targets a multi-FPGA cluster instead of the preset's single device
    /// (the paper's schedule paradigm explicitly covers multi-FPGA systems
    /// \[4, 14\]).
    #[must_use]
    pub fn on_cluster(mut self, cluster: FpgaCluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The target platform: the explicit cluster if one was set, else the
    /// preset's device.
    pub fn platform(&self) -> FpgaCluster {
        self.cluster
            .clone()
            .unwrap_or_else(|| FpgaCluster::single(self.preset.device().clone()))
    }

    /// Stops the search early once a (spec-satisfying) child reaches this
    /// accuracy — the paper's `rA` termination criterion (§2: "the search
    /// process will be stopped if … the accuracy of child network satisfies
    /// the required accuracy rA").
    #[must_use]
    pub fn with_required_accuracy(mut self, accuracy: f32) -> Self {
        self.required_accuracy = Some(accuracy);
        self
    }

    /// The early-stop accuracy, if any.
    pub fn required_accuracy(&self) -> Option<f32> {
        self.required_accuracy
    }

    /// The experiment preset.
    pub fn preset(&self) -> &ExperimentPreset {
        &self.preset
    }

    /// The search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// How [`Searcher::run_batched`] schedules child evaluation.
///
/// The worker count affects **only** wall-clock time, never results: batch
/// composition is fixed by `batch_size`, every child's RNG stream is
/// derived from its logical position via [`derive_child_seed`], and all
/// controller updates happen serially in sample order. Two runs with the
/// same config and `batch_size` are bit-identical whether they use 0, 1
/// or 8 workers. Changing `batch_size` *does* change the trajectory
/// (controller updates land between batches, not between trials).
///
/// # Examples
///
/// ```
/// use fnas::search::BatchOptions;
///
/// let opts = BatchOptions::sequential().with_batch_size(4);
/// assert_eq!(opts.workers(), 0);
/// assert_eq!(opts.batch_size(), 4);
/// let auto = BatchOptions::default();
/// assert!(auto.batch_size() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    workers: usize,
    batch_size: usize,
}

impl BatchOptions {
    /// The default children-per-episode batch size.
    pub const DEFAULT_BATCH_SIZE: usize = 8;

    /// Evaluate batches in the calling thread (no pool).
    pub fn sequential() -> Self {
        BatchOptions {
            workers: 0,
            batch_size: Self::DEFAULT_BATCH_SIZE,
        }
    }

    /// Replaces the worker count (`0` = in-thread, no spawning).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the children-per-episode batch size (clamped to ≥ 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The worker count (`0` = sequential).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Children sampled per episode.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl Default for BatchOptions {
    /// One worker per available core, default batch size.
    fn default() -> Self {
        BatchOptions {
            workers: Executor::auto().workers(),
            batch_size: Self::DEFAULT_BATCH_SIZE,
        }
    }
}

/// When and where [`Searcher::run_batched_checkpointed`] snapshots the
/// search to disk.
///
/// # Examples
///
/// ```
/// use fnas::search::CheckpointOptions;
///
/// let opts = CheckpointOptions::new("/tmp/search.ckpt").with_every_episodes(4);
/// assert_eq!(opts.every_episodes(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOptions {
    path: PathBuf,
    every_episodes: u64,
}

impl CheckpointOptions {
    /// Checkpoints to `path` after every episode.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            path: path.into(),
            every_episodes: 1,
        }
    }

    /// Replaces the write cadence (clamped to ≥ 1 episode).
    #[must_use]
    pub fn with_every_episodes(mut self, every: u64) -> Self {
        self.every_episodes = every.max(1);
        self
    }

    /// Where the checkpoint file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Episodes between checkpoint writes.
    pub fn every_episodes(&self) -> u64 {
        self.every_episodes
    }
}

/// Everything recorded about one explored child.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial index (0-based).
    pub index: usize,
    /// The sampled architecture.
    pub arch: ChildArch,
    /// FPGA latency, when it was computed (always for FNAS; post-hoc for
    /// NAS reporting, at zero modelled cost).
    pub latency: Option<Millis>,
    /// Trained/surrogate accuracy, when the child was evaluated.
    pub accuracy: Option<f32>,
    /// The reward fed to the controller.
    pub reward: f32,
    /// Whether the child was trained (false = pruned by the FNAS tool).
    pub trained: bool,
}

impl TrialRecord {
    /// `true` when this trial's latency meets `required`.
    pub fn meets(&self, required: Millis) -> bool {
        self.latency.is_some_and(|l| l.get() <= required.get())
    }
}

/// The result of one search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    mode: SearchMode,
    trials: Vec<TrialRecord>,
    cost: SearchCost,
    telemetry: TelemetrySnapshot,
}

impl SearchOutcome {
    /// All trials in exploration order.
    pub fn trials(&self) -> &[TrialRecord] {
        &self.trials
    }

    /// The mode this outcome was produced under.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Modelled search cost (the paper's "search time").
    pub fn cost(&self) -> SearchCost {
        self.cost
    }

    /// What the engine actually did: counters and per-phase wall time.
    ///
    /// Sequential [`Searcher::run`] fills the counters (with zero phase
    /// times — it has no instrumented phases); [`Searcher::run_batched`]
    /// fills everything.
    pub fn telemetry(&self) -> &TelemetrySnapshot {
        &self.telemetry
    }

    /// The architecture the run would deploy: the highest-accuracy trained
    /// child — restricted to spec-satisfying children for FNAS runs.
    pub fn best(&self) -> Option<&TrialRecord> {
        let required = self.mode.required_latency();
        self.trials
            .iter()
            .filter(|t| t.accuracy.is_some())
            .filter(|t| match required {
                Some(r) => t.meets(r),
                None => true,
            })
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of children that were actually trained.
    pub fn trained_count(&self) -> usize {
        self.trials.iter().filter(|t| t.trained).count()
    }

    /// Number of children pruned without training.
    pub fn pruned_count(&self) -> usize {
        self.trials.len() - self.trained_count()
    }

    /// Renders all trials as a markdown/CSV-ready [`Table`] (the format the
    /// examples and the benchmark harness print).
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(vec![
            "trial",
            "architecture",
            "latency",
            "accuracy",
            "reward",
        ]);
        for t in &self.trials {
            table.push_row(vec![
                t.index.to_string(),
                t.arch.describe(),
                t.latency.map_or("—".to_string(), |l| l.to_string()),
                t.accuracy.map_or("pruned".to_string(), pct),
                format!("{:+.3}", t.reward),
            ]);
        }
        table
    }

    /// The accuracy–latency Pareto front over all trained trials: trials
    /// for which no other trial is both at least as accurate *and* at
    /// least as fast (strictly better in one dimension). Sorted by latency.
    ///
    /// Useful for the designer-facing view the paper motivates ("the
    /// flexibility of FNAS provides more choices for designers").
    pub fn pareto_front(&self) -> Vec<&TrialRecord> {
        let mut candidates: Vec<&TrialRecord> = self
            .trials
            .iter()
            .filter(|t| t.accuracy.is_some() && t.latency.is_some())
            .collect();
        candidates.sort_by(|a, b| {
            let la = a.latency.expect("filtered").get();
            let lb = b.latency.expect("filtered").get();
            la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut front: Vec<&TrialRecord> = Vec::new();
        let mut best_acc = f32::NEG_INFINITY;
        for t in candidates {
            let acc = t.accuracy.expect("filtered");
            if acc > best_acc {
                front.push(t);
                best_acc = acc;
            }
        }
        front
    }
}

/// The reusable search engine: controller + oracles + cost accounting.
#[derive(Debug)]
pub struct Searcher {
    trainer: ReinforceTrainer,
    latency_eval: LatencyEvaluator,
    evaluator: Box<dyn AccuracyEvaluator>,
    // Consulted only when the oracle is deterministic (a pure function of
    // the architecture): memoising a seed-dependent oracle would make a
    // child's recorded accuracy depend on which earlier trial happened to
    // fill the cache.
    accuracy_cache: ShardedCache<ChildArch, f32>,
    baseline: EmaBaseline,
    cost_model: CostModel,
    rng: StdRng,
}

impl Searcher {
    /// Builds a searcher that scores accuracy with the calibrated
    /// surrogate — the configuration used by the paper-scale sweeps.
    ///
    /// # Errors
    ///
    /// Propagates controller construction and preset validation errors.
    pub fn surrogate(config: &SearchConfig) -> Result<Self> {
        let evaluator = Box::new(SurrogateEvaluator::new(config.preset().calibration()));
        Searcher::with_evaluator(config, evaluator)
    }

    /// Builds a searcher that really trains each child on the preset's
    /// (possibly scaled) synthetic dataset.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation errors in addition to
    /// [`Searcher::surrogate`]'s.
    pub fn trained(config: &SearchConfig, batch_size: usize) -> Result<Self> {
        let evaluator = Box::new(TrainedEvaluator::new(
            config.preset().dataset(),
            config.preset().epochs(),
            batch_size,
        )?);
        Searcher::with_evaluator(config, evaluator)
    }

    /// Builds a searcher around any accuracy oracle.
    ///
    /// # Errors
    ///
    /// Propagates controller construction and preset validation errors.
    pub fn with_evaluator(
        config: &SearchConfig,
        evaluator: Box<dyn AccuracyEvaluator>,
    ) -> Result<Self> {
        config.preset().validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed());
        // A mild entropy bonus (default) keeps the 60-trial controller from
        // collapsing into a latency-violating mode before it has seen a
        // single valid child (the paper's cluster-scale runs amortise this
        // over far more reward evaluations).
        let policy = PolicyRnn::new(config.preset().space(), &mut rng)?
            .with_entropy_weight(config.entropy_weight());
        let trainer = ReinforceTrainer::with_policy(policy, config.controller_lr());
        let latency_eval =
            LatencyEvaluator::on_cluster(config.platform(), config.preset().dataset().shape());
        Ok(Searcher {
            trainer,
            latency_eval,
            evaluator,
            accuracy_cache: ShardedCache::new(),
            baseline: EmaBaseline::new(0.8),
            cost_model: CostModel::new(
                config.preset().epochs(),
                config.preset().dataset().train_size(),
            ),
            rng,
        })
    }

    /// Replaces the cost model (e.g. for throughput sensitivity studies).
    #[must_use]
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Runs the configured search to completion.
    ///
    /// `rng` drives child-weight initialisation and sampling; the
    /// controller itself was seeded by the config.
    ///
    /// # Errors
    ///
    /// Propagates controller and oracle errors. Architectures that cannot
    /// be built at all (kernel larger than the input) are not errors: they
    /// receive a strongly negative reward, like latency violations.
    pub fn run(&mut self, config: &SearchConfig, rng: &mut dyn RngCore) -> Result<SearchOutcome> {
        let preset = config.preset();
        let mode = config.mode();
        self.baseline = EmaBaseline::new(config.baseline_decay);
        let cache_base = self.cache_counters();
        let mut trials = Vec::with_capacity(preset.trials());
        let mut cost = SearchCost::default();
        for index in 0..preset.trials() {
            let sample = self.trainer.sample(&mut self.rng)?;
            let arch = sample.arch().clone();
            let record = match mode {
                SearchMode::Fnas { required } => {
                    cost.add(self.cost_model.analyzer_cost());
                    match self.latency_eval.latency(&arch) {
                        Err(_) => TrialRecord {
                            index,
                            arch,
                            latency: None,
                            accuracy: None,
                            reward: UNBUILDABLE_REWARD,
                            trained: false,
                        },
                        Ok(latency) if latency.get() > required.get() => {
                            let reward = crate::reward::violation_reward(latency, required);
                            if config.pruning() {
                                TrialRecord {
                                    index,
                                    arch,
                                    latency: Some(latency),
                                    accuracy: None,
                                    reward,
                                    trained: false,
                                }
                            } else {
                                // Ablation: pay for training even though the
                                // child cannot be deployed.
                                let accuracy = self.evaluator.evaluate(&arch, rng)?;
                                cost.add(self.training_cost(&arch, preset)?);
                                TrialRecord {
                                    index,
                                    arch,
                                    latency: Some(latency),
                                    accuracy: Some(accuracy),
                                    reward,
                                    trained: true,
                                }
                            }
                        }
                        Ok(latency) => {
                            let accuracy = self.evaluator.evaluate(&arch, rng)?;
                            let reward = crate::reward::valid_reward(
                                accuracy,
                                self.baseline.value(),
                                latency,
                                required,
                            );
                            self.baseline.observe(accuracy);
                            cost.add(self.training_cost(&arch, preset)?);
                            TrialRecord {
                                index,
                                arch,
                                latency: Some(latency),
                                accuracy: Some(accuracy),
                                reward,
                                trained: true,
                            }
                        }
                    }
                }
                SearchMode::Nas => {
                    match self.evaluator.evaluate(&arch, rng) {
                        Err(FnasError::Nn(_)) | Err(FnasError::Fpga(_)) => TrialRecord {
                            index,
                            arch,
                            latency: None,
                            accuracy: None,
                            reward: UNBUILDABLE_REWARD,
                            trained: false,
                        },
                        Err(e) => return Err(e),
                        Ok(accuracy) => {
                            let reward = accuracy - self.baseline.value();
                            self.baseline.observe(accuracy);
                            cost.add(self.training_cost(&arch, preset)?);
                            // Latency recorded post-hoc for reporting only —
                            // plain NAS never consults the FPGA model, so no
                            // analyzer cost is charged.
                            let latency = self.latency_eval.latency(&arch).ok();
                            TrialRecord {
                                index,
                                arch,
                                latency,
                                accuracy: Some(accuracy),
                                reward,
                                trained: true,
                            }
                        }
                    }
                }
            };
            self.trainer.update(&sample, record.reward)?;
            let satisfied = config
                .required_accuracy()
                .is_some_and(|ra| record.accuracy.is_some_and(|a| a >= ra));
            trials.push(record);
            if satisfied {
                break;
            }
        }
        let telemetry = self.outcome_telemetry(&trials, trials.len() as u64, cache_base);
        Ok(SearchOutcome {
            mode,
            trials,
            cost,
            telemetry,
        })
    }

    /// Runs the configured search episode-by-episode, evaluating each
    /// episode's children on an [`Executor`] pool.
    ///
    /// Per episode: sample `batch_size` children from the controller
    /// (serial — the policy RNN consumes the run RNG), analyze their FPGA
    /// latency in parallel, evaluate the survivors' accuracy in parallel,
    /// then compute rewards and apply REINFORCE updates serially in sample
    /// order. Each child's evaluation RNG is seeded from
    /// [`derive_child_seed`]`(config.seed(), episode, child)`, so the
    /// outcome is **bit-identical for any worker count** (see
    /// [`BatchOptions`]).
    ///
    /// The accuracy phase is fault-isolated: a child evaluation that
    /// panics, exhausts its retry budget (see
    /// [`crate::resilience::ResilientEvaluator`]) or fails with any
    /// non-fatal oracle error settles into a *failed* [`TrialRecord`] with
    /// a strongly negative reward; its siblings — whose RNG streams are
    /// independent by construction — are unaffected and the run continues.
    ///
    /// Note the trajectory legitimately differs from [`Searcher::run`]:
    /// the sequential loop updates the controller after every child, the
    /// batched loop between episodes (a standard REINFORCE minibatch).
    ///
    /// # Errors
    ///
    /// Propagates controller errors and oracle *misconfigurations*
    /// ([`FnasError::InvalidConfig`]); unbuildable architectures and
    /// faulted evaluations are rewarded negatively, not errors.
    pub fn run_batched(
        &mut self,
        config: &SearchConfig,
        opts: &BatchOptions,
    ) -> Result<SearchOutcome> {
        self.run_batched_inner(config, opts, None, None)
    }

    /// [`Searcher::run_batched`], plus a checkpoint written to
    /// `ckpt.path()` every `ckpt.every_episodes()` episodes (atomically —
    /// a crash mid-write keeps the previous snapshot). Checkpointing does
    /// not change results: the snapshot captures only logical state.
    ///
    /// # Errors
    ///
    /// [`Searcher::run_batched`]'s, plus [`FnasError::Io`] when a
    /// checkpoint cannot be written.
    pub fn run_batched_checkpointed(
        &mut self,
        config: &SearchConfig,
        opts: &BatchOptions,
        ckpt: &CheckpointOptions,
    ) -> Result<SearchOutcome> {
        self.run_batched_inner(config, opts, None, Some(ckpt))
    }

    /// Resumes a search from the checkpoint at `ckpt.path()` and runs it
    /// to completion, continuing to checkpoint on the same cadence.
    ///
    /// The outcome is **bit-identical** to the uninterrupted run: the
    /// checkpoint restores the controller (weights + optimiser moments),
    /// the EMA baseline, the run RNG state, the trial history, the
    /// accumulated cost and the logical telemetry counters, and per-child
    /// RNG streams were never process state to begin with. Memo caches are
    /// deliberately *not* restored — by the engine's cache-transparency
    /// invariant they only affect wall-clock time (cache counters and
    /// phase times are the one legitimate difference).
    ///
    /// # Errors
    ///
    /// [`FnasError::Io`] when the checkpoint cannot be read,
    /// [`FnasError::InvalidConfig`] when it is corrupt or was written by a
    /// run with a different seed, plus [`Searcher::run_batched`]'s errors.
    pub fn resume_batched(
        &mut self,
        config: &SearchConfig,
        opts: &BatchOptions,
        ckpt: &CheckpointOptions,
    ) -> Result<SearchOutcome> {
        let state = SearchCheckpoint::load(ckpt.path())?;
        self.run_batched_inner(config, opts, Some(state), Some(ckpt))
    }

    fn run_batched_inner(
        &mut self,
        config: &SearchConfig,
        opts: &BatchOptions,
        resume: Option<SearchCheckpoint>,
        ckpt: Option<&CheckpointOptions>,
    ) -> Result<SearchOutcome> {
        let preset = config.preset();
        let mode = config.mode();
        let telemetry = SearchTelemetry::new();
        let executor = Executor::with_workers(opts.workers());
        let batch_size = opts.batch_size().max(1);
        let cache_base = self.cache_counters();
        let fault_base = self.evaluator.fault_stats().unwrap_or_default();

        let total = preset.trials();
        let mut trials;
        let mut cost;
        let mut episode: u64;
        match resume {
            Some(state) => {
                if state.run_seed != config.seed() {
                    return Err(FnasError::InvalidConfig {
                        what: format!(
                            "checkpoint belongs to a run with seed {:#x}, config says {:#x}",
                            state.run_seed,
                            config.seed()
                        ),
                    });
                }
                self.trainer.import_state(&state.trainer)?;
                self.baseline = EmaBaseline::restore(config.baseline_decay, state.baseline);
                self.rng = StdRng::from_state(state.rng_state);
                telemetry.restore_counters(&state.telemetry);
                trials = state.trials;
                cost = state.cost;
                episode = state.next_episode;
            }
            None => {
                self.baseline = EmaBaseline::new(config.baseline_decay);
                trials = Vec::with_capacity(total);
                cost = SearchCost::default();
                episode = 0;
            }
        }
        'search: while trials.len() < total {
            let n = batch_size.min(total - trials.len());
            let samples = {
                let _t = telemetry.phase_timer(Phase::Sample);
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(self.trainer.sample(&mut self.rng)?);
                }
                batch
            };
            telemetry.add_sampled(n as u64);
            let archs: Vec<ChildArch> = samples.iter().map(|s| s.arch().clone()).collect();

            let latency_eval = &self.latency_eval;
            let latencies: Vec<Result<Millis>> = {
                let _t = telemetry.phase_timer(Phase::Latency);
                executor.map(&archs, |_, arch| latency_eval.latency(arch))
            };

            // Which children go to the accuracy oracle. FNAS: buildable and
            // within spec (or the no-pruning ablation). NAS: everything.
            let needs_accuracy: Vec<bool> = match mode {
                SearchMode::Fnas { required } => latencies
                    .iter()
                    .map(|r| match r {
                        Err(_) => false,
                        Ok(l) => l.get() <= required.get() || !config.pruning(),
                    })
                    .collect(),
                SearchMode::Nas => vec![true; archs.len()],
            };
            telemetry.add_train_calls(needs_accuracy.iter().filter(|&&b| b).count() as u64);

            let evaluator = &*self.evaluator;
            let accuracy_cache = &self.accuracy_cache;
            let memoise = evaluator.deterministic();
            let run_seed = config.seed();
            // `map_settle`: a panicking child evaluation settles into a
            // per-slot fault instead of unwinding through the pool and
            // killing the whole search.
            let accuracies = {
                let _t = telemetry.phase_timer(Phase::Accuracy);
                executor.map_settle(&archs, |child, arch| {
                    if !needs_accuracy[child] {
                        return None;
                    }
                    let seed = derive_child_seed(run_seed, episode, child as u64);
                    let mut rng = StdRng::seed_from_u64(seed);
                    Some(if memoise {
                        accuracy_cache
                            .get_or_try_insert_with(arch, || evaluator.evaluate(arch, &mut rng))
                    } else {
                        evaluator.evaluate(arch, &mut rng)
                    })
                })
            };

            // Serial epilogue, in sample order: rewards see the baseline as
            // of the previous child, exactly like the sequential loop.
            let _t = telemetry.phase_timer(Phase::Update);
            for ((sample, latency), settled) in samples.into_iter().zip(latencies).zip(accuracies) {
                let index = trials.len();
                let arch = sample.arch().clone();
                let accuracy: Option<Result<f32>> = match settled {
                    Ok(acc) => acc,
                    Err(fault) => {
                        telemetry.add_panic_caught();
                        Some(Err(FnasError::Oracle {
                            what: fault.to_string(),
                            transient: false,
                        }))
                    }
                };
                let record = match mode {
                    SearchMode::Fnas { required } => {
                        cost.add(self.cost_model.analyzer_cost());
                        match latency {
                            Err(_) => {
                                telemetry.add_unbuildable();
                                TrialRecord {
                                    index,
                                    arch,
                                    latency: None,
                                    accuracy: None,
                                    reward: UNBUILDABLE_REWARD,
                                    trained: false,
                                }
                            }
                            Ok(l) if l.get() > required.get() => {
                                let reward = crate::reward::violation_reward(l, required);
                                if config.pruning() {
                                    telemetry.add_pruned();
                                    TrialRecord {
                                        index,
                                        arch,
                                        latency: Some(l),
                                        accuracy: None,
                                        reward,
                                        trained: false,
                                    }
                                } else {
                                    match accuracy.expect("ablation evaluates violators") {
                                        Ok(accuracy) => {
                                            cost.add(self.training_cost(&arch, preset)?);
                                            telemetry.add_trained();
                                            TrialRecord {
                                                index,
                                                arch,
                                                latency: Some(l),
                                                accuracy: Some(accuracy),
                                                reward,
                                                trained: true,
                                            }
                                        }
                                        Err(e) => failed_or_unbuildable(
                                            e,
                                            index,
                                            arch,
                                            Some(l),
                                            &telemetry,
                                        )?,
                                    }
                                }
                            }
                            Ok(l) => match accuracy.expect("valid child was evaluated") {
                                Ok(accuracy) => {
                                    let reward = crate::reward::valid_reward(
                                        accuracy,
                                        self.baseline.value(),
                                        l,
                                        required,
                                    );
                                    self.baseline.observe(accuracy);
                                    cost.add(self.training_cost(&arch, preset)?);
                                    telemetry.add_trained();
                                    TrialRecord {
                                        index,
                                        arch,
                                        latency: Some(l),
                                        accuracy: Some(accuracy),
                                        reward,
                                        trained: true,
                                    }
                                }
                                Err(e) => {
                                    failed_or_unbuildable(e, index, arch, Some(l), &telemetry)?
                                }
                            },
                        }
                    }
                    SearchMode::Nas => match accuracy.expect("every NAS child is evaluated") {
                        Err(e) => failed_or_unbuildable(e, index, arch, None, &telemetry)?,
                        Ok(accuracy) => {
                            let reward = accuracy - self.baseline.value();
                            self.baseline.observe(accuracy);
                            cost.add(self.training_cost(&arch, preset)?);
                            telemetry.add_trained();
                            TrialRecord {
                                index,
                                arch,
                                // Post-hoc latency for reporting only (zero
                                // modelled cost), like the sequential loop.
                                latency: latency.ok(),
                                accuracy: Some(accuracy),
                                reward,
                                trained: true,
                            }
                        }
                    },
                };
                self.trainer.update(&sample, record.reward)?;
                let satisfied = config
                    .required_accuracy()
                    .is_some_and(|ra| record.accuracy.is_some_and(|a| a >= ra));
                trials.push(record);
                if satisfied {
                    telemetry.add_episode();
                    break 'search;
                }
            }
            drop(_t);
            telemetry.add_episode();
            episode += 1;
            if let Some(c) = ckpt {
                if episode.is_multiple_of(c.every_episodes()) {
                    telemetry.add_checkpoint_written();
                    self.write_checkpoint(config, episode, &trials, &cost, &telemetry, fault_base)?
                        .save(c.path())?;
                }
            }
        }

        self.charge_cache_deltas(&telemetry, cache_base);
        if let Some(stats) = self.evaluator.fault_stats() {
            telemetry.add_retries(stats.retries - fault_base.retries);
            telemetry.add_quarantined(stats.quarantined - fault_base.quarantined);
        }
        Ok(SearchOutcome {
            mode,
            trials,
            cost,
            telemetry: telemetry.snapshot(),
        })
    }

    /// Assembles the checkpoint for the state at the start of episode
    /// `next_episode`.
    fn write_checkpoint(
        &mut self,
        config: &SearchConfig,
        next_episode: u64,
        trials: &[TrialRecord],
        cost: &SearchCost,
        telemetry: &SearchTelemetry,
        fault_base: FaultStatsSnapshot,
    ) -> Result<SearchCheckpoint> {
        Ok(SearchCheckpoint {
            run_seed: config.seed(),
            next_episode,
            rng_state: self.rng.state(),
            baseline: self.baseline.raw_value(),
            cost: *cost,
            trainer: self.trainer.export_state(),
            telemetry: self.logical_counters(telemetry, fault_base),
            trials: trials.to_vec(),
        })
    }

    /// The process-independent slice of the live telemetry: logical
    /// counters (including fault deltas accrued by the oracle so far),
    /// with cache traffic, analyzer calls and wall times zeroed — those
    /// describe *this* process and must not be replayed into a resumed
    /// run's accounting.
    fn logical_counters(
        &self,
        telemetry: &SearchTelemetry,
        fault_base: FaultStatsSnapshot,
    ) -> TelemetrySnapshot {
        let live = telemetry.snapshot();
        let mut s = TelemetrySnapshot {
            children_sampled: live.children_sampled,
            children_pruned: live.children_pruned,
            children_trained: live.children_trained,
            children_unbuildable: live.children_unbuildable,
            children_failed: live.children_failed,
            episodes: live.episodes,
            panics_caught: live.panics_caught,
            retries: live.retries,
            quarantined: live.quarantined,
            checkpoints_written: live.checkpoints_written,
            train_calls: live.train_calls,
            ..TelemetrySnapshot::default()
        };
        if let Some(f) = self.evaluator.fault_stats() {
            s.retries += f.retries - fault_base.retries;
            s.quarantined += f.quarantined - fault_base.quarantined;
        }
        s
    }

    /// `(latency hits, latency misses, analyzer calls, accuracy hits,
    /// accuracy misses)` — the searcher's caches outlive individual runs,
    /// so per-run telemetry is a delta against these.
    fn cache_counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.latency_eval.cache_hits(),
            self.latency_eval.cache_misses(),
            self.latency_eval.analyzer_calls(),
            self.accuracy_cache.hits(),
            self.accuracy_cache.misses(),
        )
    }

    fn charge_cache_deltas(&self, telemetry: &SearchTelemetry, base: (u64, u64, u64, u64, u64)) {
        let (lat_hits, lat_misses, analyzer, acc_hits, acc_misses) = base;
        telemetry.add_latency_cache(
            self.latency_eval.cache_hits() - lat_hits,
            self.latency_eval.cache_misses() - lat_misses,
        );
        telemetry.add_analyzer_calls(self.latency_eval.analyzer_calls() - analyzer);
        telemetry.add_accuracy_cache(
            self.accuracy_cache.hits() - acc_hits,
            self.accuracy_cache.misses() - acc_misses,
        );
    }

    /// Builds the sequential loop's snapshot from its trial records (it
    /// has no instrumented phases, so the timers stay zero).
    fn outcome_telemetry(
        &self,
        trials: &[TrialRecord],
        episodes: u64,
        cache_base: (u64, u64, u64, u64, u64),
    ) -> TelemetrySnapshot {
        let telemetry = SearchTelemetry::new();
        telemetry.add_sampled(trials.len() as u64);
        for t in trials {
            if t.trained {
                telemetry.add_trained();
                telemetry.add_train_calls(1);
            } else if t.latency.is_some() {
                telemetry.add_pruned();
            } else {
                telemetry.add_unbuildable();
            }
        }
        for _ in 0..episodes {
            telemetry.add_episode();
        }
        self.charge_cache_deltas(&telemetry, cache_base);
        telemetry.snapshot()
    }

    fn training_cost(&self, arch: &ChildArch, preset: &ExperimentPreset) -> Result<SearchCost> {
        let network = arch_to_network(arch, preset.dataset().shape())?;
        Ok(self.cost_model.training_cost(&network))
    }
}

/// Reward for architectures that cannot be realised at all.
const UNBUILDABLE_REWARD: f32 = -2.0;

/// Reward for children whose evaluation faulted (panic, exhausted retry
/// budget, quarantined accuracy). As strongly negative as unbuildable: the
/// controller should steer away, but the run must not die.
const FAULTED_REWARD: f32 = -2.0;

/// Absorbs a child-evaluation error into the trial stream, or propagates
/// it when it is fatal.
///
/// * [`FnasError::InvalidConfig`] — a misconfigured oracle fails every
///   child identically; aborting beats 60 failed trials.
/// * [`FnasError::Nn`] / [`FnasError::Fpga`] — the architecture cannot be
///   realised: an *unbuildable* record (pre-existing semantics).
/// * everything else (oracle faults, I/O) — a *failed* record; siblings
///   and later episodes are unaffected.
fn failed_or_unbuildable(
    e: FnasError,
    index: usize,
    arch: ChildArch,
    latency: Option<Millis>,
    telemetry: &SearchTelemetry,
) -> Result<TrialRecord> {
    match e {
        FnasError::InvalidConfig { .. } => Err(e),
        FnasError::Nn(_) | FnasError::Fpga(_) => {
            telemetry.add_unbuildable();
            Ok(TrialRecord {
                index,
                arch,
                latency: None,
                accuracy: None,
                reward: UNBUILDABLE_REWARD,
                trained: false,
            })
        }
        _ => {
            telemetry.add_failed();
            Ok(TrialRecord {
                index,
                arch,
                latency,
                accuracy: None,
                reward: FAULTED_REWARD,
                trained: false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_preset() -> ExperimentPreset {
        ExperimentPreset::mnist().with_trials(12)
    }

    #[test]
    fn fnas_prunes_and_nas_does_not() {
        let mut rng = StdRng::seed_from_u64(0);
        // A tight budget on MNIST: plenty of children violate it.
        let fnas_cfg = SearchConfig::fnas(quick_preset(), 2.0);
        let fnas = Searcher::surrogate(&fnas_cfg)
            .unwrap()
            .run(&fnas_cfg, &mut rng)
            .unwrap();
        assert!(fnas.pruned_count() > 0, "tight spec should prune children");

        let nas_cfg = SearchConfig::nas(quick_preset());
        let nas = Searcher::surrogate(&nas_cfg)
            .unwrap()
            .run(&nas_cfg, &mut rng)
            .unwrap();
        assert_eq!(nas.pruned_count(), 0);
        assert_eq!(nas.trained_count(), 12);
    }

    #[test]
    fn fnas_is_cheaper_than_nas_under_a_tight_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let nas_cfg = SearchConfig::nas(quick_preset());
        let nas = Searcher::surrogate(&nas_cfg)
            .unwrap()
            .run(&nas_cfg, &mut rng)
            .unwrap();
        let fnas_cfg = SearchConfig::fnas(quick_preset(), 2.0);
        let fnas = Searcher::surrogate(&fnas_cfg)
            .unwrap()
            .run(&fnas_cfg, &mut rng)
            .unwrap();
        assert!(
            fnas.cost().total_seconds() < nas.cost().total_seconds(),
            "fnas {} vs nas {}",
            fnas.cost(),
            nas.cost()
        );
    }

    #[test]
    fn fnas_best_always_meets_the_spec() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SearchConfig::fnas(quick_preset().with_trials(20), 5.0);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        if let Some(best) = out.best() {
            assert!(best.meets(Millis::new(5.0)));
            assert!(best.trained);
            assert!(best.accuracy.is_some());
        }
        // Every violated trial has a negative reward and was not trained.
        for t in out.trials() {
            if let Some(l) = t.latency {
                if l.get() > 5.0 {
                    assert!(t.reward < 0.0);
                    assert!(!t.trained);
                    assert!(t.accuracy.is_none());
                }
            }
        }
    }

    #[test]
    fn nas_best_is_global_accuracy_max() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SearchConfig::nas(quick_preset());
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        let best = out.best().unwrap();
        let max = out
            .trials()
            .iter()
            .filter_map(|t| t.accuracy)
            .fold(0.0f32, f32::max);
        assert_eq!(best.accuracy.unwrap(), max);
    }

    #[test]
    fn runs_are_reproducible_under_a_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(4);
            let cfg = SearchConfig::fnas(quick_preset(), 5.0).with_seed(77);
            let out = Searcher::surrogate(&cfg)
                .unwrap()
                .run(&cfg, &mut rng)
                .unwrap();
            out.trials()
                .iter()
                .map(|t| (t.arch.describe(), t.reward.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn looser_specs_prune_less() {
        let count_pruned = |ms: f64| {
            let mut rng = StdRng::seed_from_u64(5);
            let cfg = SearchConfig::fnas(quick_preset().with_trials(30), ms);
            Searcher::surrogate(&cfg)
                .unwrap()
                .run(&cfg, &mut rng)
                .unwrap()
                .pruned_count()
        };
        assert!(count_pruned(2.0) >= count_pruned(20.0));
    }

    #[test]
    fn summary_table_has_one_row_per_trial() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = SearchConfig::fnas(quick_preset(), 5.0);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        let table = out.summary_table();
        assert_eq!(table.len(), out.trials().len());
        let md = table.to_markdown();
        assert!(md.contains("architecture"));
    }

    #[test]
    fn pareto_front_is_monotone_and_non_dominated() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SearchConfig::fnas(quick_preset().with_trials(25), 20.0);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        let front = out.pareto_front();
        assert!(!front.is_empty());
        // Latency strictly increasing, accuracy strictly increasing.
        for pair in front.windows(2) {
            assert!(pair[0].latency.unwrap().get() < pair[1].latency.unwrap().get());
            assert!(pair[0].accuracy.unwrap() < pair[1].accuracy.unwrap());
        }
        // No trained trial dominates a front member.
        for f in &front {
            for t in out.trials() {
                if let (Some(acc), Some(lat)) = (t.accuracy, t.latency) {
                    let dominates = acc >= f.accuracy.unwrap()
                        && lat.get() <= f.latency.unwrap().get()
                        && (acc > f.accuracy.unwrap() || lat.get() < f.latency.unwrap().get());
                    assert!(
                        !dominates,
                        "{} dominates {}",
                        t.arch.describe(),
                        f.arch.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn required_accuracy_stops_the_search_early() {
        let mut rng = StdRng::seed_from_u64(8);
        // A very permissive rA: the first trained child satisfies it.
        let cfg = SearchConfig::nas(quick_preset().with_trials(50)).with_required_accuracy(0.5);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        assert!(out.trials().len() < 50, "ran {} trials", out.trials().len());
        let last = out.trials().last().unwrap();
        assert!(last.accuracy.unwrap() >= 0.5);
        // An unreachable rA never triggers.
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = SearchConfig::nas(quick_preset()).with_required_accuracy(2.0);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        assert_eq!(out.trials().len(), 12);
    }

    #[test]
    fn cluster_target_loosens_the_same_budget() {
        // The same tight budget prunes fewer children on a 4-board platform.
        use fnas_fpga::device::FpgaDevice;
        let pruned_on = |boards: usize| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut cfg = SearchConfig::fnas(quick_preset().with_trials(20), 3.0).with_seed(7);
            if boards > 1 {
                cfg = cfg.on_cluster(
                    FpgaCluster::homogeneous(FpgaDevice::xc7z020(), boards, 32.0)
                        .expect("valid cluster"),
                );
            }
            Searcher::surrogate(&cfg)
                .unwrap()
                .run(&cfg, &mut rng)
                .unwrap()
                .pruned_count()
        };
        assert!(pruned_on(4) <= pruned_on(1));
    }

    fn batched_trace(cfg: &SearchConfig, workers: usize) -> Vec<(String, u32, u64)> {
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(6);
        let out = Searcher::surrogate(cfg)
            .unwrap()
            .run_batched(cfg, &opts)
            .unwrap();
        out.trials()
            .iter()
            .map(|t| {
                (
                    t.arch.describe(),
                    t.reward.to_bits(),
                    t.latency.map_or(0, |l| l.get().to_bits()),
                )
            })
            .collect()
    }

    #[test]
    fn worker_count_does_not_change_batched_results() {
        let cfg = SearchConfig::fnas(quick_preset().with_trials(18), 5.0).with_seed(21);
        let sequential = batched_trace(&cfg, 0);
        for workers in [1, 2, 8] {
            assert_eq!(
                batched_trace(&cfg, workers),
                sequential,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn batched_runs_all_trials_and_reports_telemetry() {
        let cfg = SearchConfig::fnas(quick_preset().with_trials(20), 5.0).with_seed(3);
        let opts = BatchOptions::sequential().with_batch_size(8);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run_batched(&cfg, &opts)
            .unwrap();
        assert_eq!(out.trials().len(), 20);
        // Indices are contiguous exploration order.
        for (i, t) in out.trials().iter().enumerate() {
            assert_eq!(t.index, i);
        }
        let t = out.telemetry();
        assert_eq!(t.children_sampled, 20);
        assert_eq!(t.episodes, 3, "20 trials / batch of 8 = 3 episodes");
        assert_eq!(
            t.children_pruned + t.children_trained + t.children_unbuildable,
            20
        );
        assert_eq!(t.children_pruned, out.pruned_count() as u64);
        // The surrogate is deterministic, so revisited architectures hit
        // the accuracy cache; every lookup is counted one way or the other.
        assert_eq!(
            t.accuracy_cache_hits + t.accuracy_cache_misses,
            t.train_calls
        );
        assert!(t.latency_cache_misses > 0);
    }

    #[test]
    fn batched_respects_required_accuracy_early_stop() {
        let cfg = SearchConfig::nas(quick_preset().with_trials(50)).with_required_accuracy(0.5);
        let opts = BatchOptions::sequential().with_batch_size(4);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run_batched(&cfg, &opts)
            .unwrap();
        assert!(out.trials().len() < 50, "ran {} trials", out.trials().len());
        assert!(out.trials().last().unwrap().accuracy.unwrap() >= 0.5);
    }

    #[test]
    fn sequential_run_fills_telemetry_counters() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = SearchConfig::fnas(quick_preset(), 2.0);
        let out = Searcher::surrogate(&cfg)
            .unwrap()
            .run(&cfg, &mut rng)
            .unwrap();
        let t = out.telemetry();
        assert_eq!(t.children_sampled, out.trials().len() as u64);
        assert_eq!(t.children_pruned, out.pruned_count() as u64);
        assert_eq!(t.children_trained, out.trained_count() as u64);
        assert!(t.latency_cache_hits + t.latency_cache_misses > 0);
        assert_eq!(t.total_time(), std::time::Duration::ZERO);
    }

    #[test]
    fn batch_options_accessors_and_clamping() {
        let opts = BatchOptions::sequential();
        assert_eq!(opts.workers(), 0);
        assert_eq!(opts.batch_size(), BatchOptions::DEFAULT_BATCH_SIZE);
        assert_eq!(opts.with_batch_size(0).batch_size(), 1);
        assert_eq!(opts.with_workers(4).workers(), 4);
    }

    /// Everything that must be bit-identical across worker counts,
    /// checkpointing, and resume: trial records, accumulated cost, and the
    /// logical telemetry counters. Cache traffic, wall times and
    /// checkpoint-write counts are process-local and deliberately omitted.
    fn fingerprint(out: &SearchOutcome) -> Vec<String> {
        let mut v: Vec<String> = out
            .trials()
            .iter()
            .map(|t| {
                format!(
                    "{} r{:08x} l{:016x} a{:08x} t{}",
                    t.arch.describe(),
                    t.reward.to_bits(),
                    t.latency.map_or(0, |l| l.get().to_bits()),
                    t.accuracy.map_or(0, |a| a.to_bits()),
                    t.trained,
                )
            })
            .collect();
        v.push(format!(
            "cost {:016x} {:016x}",
            out.cost().training_seconds.to_bits(),
            out.cost().analyzer_seconds.to_bits()
        ));
        let t = out.telemetry();
        v.push(format!(
            "tel {} {} {} {} {} {} {} {} {} {}",
            t.children_sampled,
            t.children_pruned,
            t.children_trained,
            t.children_unbuildable,
            t.children_failed,
            t.episodes,
            t.train_calls,
            t.panics_caught,
            t.retries,
            t.quarantined,
        ));
        v
    }

    #[test]
    fn checkpoint_and_resume_are_bit_identical_for_any_worker_count() {
        let dir = std::env::temp_dir().join("fnas-search-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let full = SearchConfig::fnas(quick_preset().with_trials(24), 5.0).with_seed(33);
        for workers in [0usize, 1, 2, 8] {
            let opts = BatchOptions::sequential()
                .with_workers(workers)
                .with_batch_size(6);
            let reference = Searcher::surrogate(&full)
                .unwrap()
                .run_batched(&full, &opts)
                .unwrap();
            // Checkpointing along the way must not perturb results.
            let path = dir.join(format!("w{workers}.ckpt"));
            let ckpt = CheckpointOptions::new(&path);
            let checked = Searcher::surrogate(&full)
                .unwrap()
                .run_batched_checkpointed(&full, &opts, &ckpt)
                .unwrap();
            assert_eq!(
                fingerprint(&checked),
                fingerprint(&reference),
                "checkpointed run, workers {workers}"
            );
            assert_eq!(checked.telemetry().checkpoints_written, 4);
            // Simulate a kill after episode 2: run only the 12-trial
            // prefix under the same seed, leaving its checkpoint behind...
            let prefix = SearchConfig::fnas(quick_preset().with_trials(12), 5.0).with_seed(33);
            Searcher::surrogate(&prefix)
                .unwrap()
                .run_batched_checkpointed(&prefix, &opts, &ckpt)
                .unwrap();
            // ...then resume the full run in a FRESH searcher (cold memo
            // caches — the cache-transparency invariant keeps results
            // identical anyway).
            let resumed = Searcher::surrogate(&full)
                .unwrap()
                .resume_batched(&full, &opts, &ckpt)
                .unwrap();
            assert_eq!(
                fingerprint(&resumed),
                fingerprint(&reference),
                "resumed run, workers {workers}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn resume_refuses_a_checkpoint_from_a_different_seed() {
        let dir = std::env::temp_dir().join("fnas-search-ckpt-seed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        let ckpt = CheckpointOptions::new(&path);
        let opts = BatchOptions::sequential().with_batch_size(6);
        let cfg = SearchConfig::fnas(quick_preset(), 5.0).with_seed(1);
        Searcher::surrogate(&cfg)
            .unwrap()
            .run_batched_checkpointed(&cfg, &opts, &ckpt)
            .unwrap();
        let other = SearchConfig::fnas(quick_preset(), 5.0).with_seed(2);
        let err = Searcher::surrogate(&other)
            .unwrap()
            .resume_batched(&other, &opts, &ckpt)
            .unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Oracle that fails exactly one scripted architecture.
    #[derive(Debug)]
    struct FailOn {
        inner: SurrogateEvaluator,
        victim: ChildArch,
        as_nn: bool,
    }

    impl AccuracyEvaluator for FailOn {
        fn evaluate(&self, arch: &ChildArch, rng: &mut dyn RngCore) -> Result<f32> {
            if *arch == self.victim {
                return Err(if self.as_nn {
                    FnasError::Nn(fnas_nn::NnError::InvalidConfig {
                        what: "scripted build failure".to_string(),
                    })
                } else {
                    FnasError::Oracle {
                        what: "scripted oracle failure".to_string(),
                        transient: false,
                    }
                });
            }
            self.inner.evaluate(arch, rng)
        }

        fn name(&self) -> &'static str {
            "fail-on"
        }
    }

    #[test]
    fn mid_batch_oracle_error_does_not_perturb_siblings() {
        let cfg = SearchConfig::nas(quick_preset()).with_seed(9);
        let opts = BatchOptions::sequential()
            .with_batch_size(6)
            .with_workers(2);
        let reference = Searcher::surrogate(&cfg)
            .unwrap()
            .run_batched(&cfg, &opts)
            .unwrap();
        // Victim: a first-episode child whose architecture is unique
        // within that episode (duplicates would fail alongside it).
        let first = &reference.trials()[..6];
        let victim_idx = (0..6)
            .find(|&i| {
                first
                    .iter()
                    .enumerate()
                    .all(|(j, t)| j == i || t.arch != first[i].arch)
            })
            .expect("some first-episode arch is unique");
        let victim = first[victim_idx].arch.clone();
        for as_nn in [false, true] {
            let eval = FailOn {
                inner: SurrogateEvaluator::new(cfg.preset().calibration()),
                victim: victim.clone(),
                as_nn,
            };
            let out = Searcher::with_evaluator(&cfg, Box::new(eval))
                .unwrap()
                .run_batched(&cfg, &opts)
                .unwrap();
            assert_eq!(out.trials().len(), reference.trials().len());
            let t = &out.trials()[victim_idx];
            assert_eq!(t.arch, victim);
            assert_eq!(t.accuracy, None);
            assert!(!t.trained);
            assert!(t.reward <= -2.0 + f32::EPSILON);
            if as_nn {
                assert!(out.telemetry().children_unbuildable >= 1);
            } else {
                assert!(out.telemetry().children_failed >= 1);
            }
            // Sibling seeds and results are untouched: same architectures,
            // latencies and accuracies bit-for-bit. Siblings *before* the
            // victim match completely; those after may see a different
            // reward only through the (serial) EMA baseline, which the
            // failed victim legitimately did not feed.
            for (i, sib) in first.iter().enumerate() {
                if i == victim_idx {
                    continue;
                }
                let got = &out.trials()[i];
                assert_eq!(got.arch, sib.arch, "sibling {i} arch perturbed");
                assert_eq!(got.latency, sib.latency, "sibling {i} latency perturbed");
                assert_eq!(got.accuracy, sib.accuracy, "sibling {i} accuracy perturbed");
                assert_eq!(got.trained, sib.trained, "sibling {i} trained perturbed");
                if i < victim_idx {
                    assert_eq!(got, sib, "pre-victim sibling {i} perturbed");
                }
            }
            // The trajectory may diverge *after* the victim's episode (the
            // controller saw a different reward), but the run completes.
        }
    }

    #[test]
    fn chaos_run_completes_with_finite_rewards_and_fault_telemetry() {
        use crate::resilience::{FaultInjector, FaultPlan, ResilientEvaluator, RetryPolicy};
        let cfg = SearchConfig::nas(quick_preset().with_trials(24)).with_seed(5);
        let chaos_searcher = || {
            let inner = SurrogateEvaluator::new(cfg.preset().calibration());
            let injector = FaultInjector::new(
                Box::new(inner),
                FaultPlan {
                    panic_rate: 0.05,
                    transient_rate: 0.20,
                    nan_rate: 0.05,
                },
            );
            let oracle = ResilientEvaluator::new(Box::new(injector), RetryPolicy::default());
            Searcher::with_evaluator(&cfg, Box::new(oracle)).unwrap()
        };
        // Injected panics are expected here; keep them off the test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |workers: usize| {
            let opts = BatchOptions::sequential()
                .with_batch_size(8)
                .with_workers(workers);
            chaos_searcher().run_batched(&cfg, &opts)
        };
        let sequential = run(0);
        let pooled = run(8);
        std::panic::set_hook(prev);
        let sequential = sequential.unwrap();
        let pooled = pooled.unwrap();
        assert_eq!(sequential.trials().len(), 24, "chaos must not lose trials");
        assert!(sequential.trials().iter().all(|t| t.reward.is_finite()));
        let t = sequential.telemetry();
        assert!(
            t.retries > 0 || t.children_failed > 0 || t.panics_caught > 0,
            "these rates should have injected something: {t}"
        );
        // Chaos is deterministic in the per-child streams: the pooled run
        // reproduces the sequential one bit-for-bit, faults included.
        assert_eq!(fingerprint(&pooled), fingerprint(&sequential));
    }

    #[test]
    fn mode_accessors() {
        assert_eq!(SearchMode::Nas.required_latency(), None);
        let m = SearchMode::Fnas {
            required: Millis::new(3.0),
        };
        assert_eq!(m.required_latency().unwrap().get(), 3.0);
        let cfg = SearchConfig::fnas(quick_preset(), 3.0);
        assert!(matches!(cfg.mode(), SearchMode::Fnas { .. }));
        assert_eq!(SearchConfig::nas(quick_preset()).mode(), SearchMode::Nas);
    }
}
