use std::fmt;

use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` owns its storage (`Vec<f32>`) and carries a [`Shape`]. All
/// arithmetic lives either here (construction, indexing, reshape, reductions)
/// or in the `ops` module (element-wise maths, matmul), and every fallible
/// operation validates shapes up front.
///
/// # Examples
///
/// ```
/// use fnas_tensor::Tensor;
///
/// # fn main() -> Result<(), fnas_tensor::TensorError> {
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.sum(), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use fnas_tensor::Tensor;
    /// let i = Tensor::eye(3);
    /// assert_eq!(i.get(&[1, 1]), Some(1.0));
    /// assert_eq!(i.get(&[1, 2]), Some(0.0));
    /// ```
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n][..]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements `shape` requires.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
                shape,
            });
        }
        Ok(Tensor { data, shape })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-axis index, or `None` if out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.offset(index).map(|o| self.data[o])
    }

    /// Sets the value at a multi-axis index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid for
    /// this shape.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: *index.last().unwrap_or(&0),
                bound: self.shape.len(),
                axis: None,
            }),
        }
    }

    /// Value at a flat row-major offset.
    ///
    /// Prefer this in hot loops where the offset has been computed once.
    pub fn at(&self, offset: usize) -> f32 {
        self.data[offset]
    }

    /// Mutable value at a flat row-major offset.
    pub fn at_mut(&mut self, offset: usize) -> &mut f32 {
        &mut self.data[offset]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Fills the tensor with a single value.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const PREVIEW: usize = 8;
        write!(f, "[")?;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let shape = Shape::new(&[data.len()]);
        Tensor { data, shape }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_filled() {
        assert_eq!(Tensor::zeros(&[2, 2][..]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2][..]).sum(), 4.0);
        assert_eq!(Tensor::filled(&[3][..], 2.5).sum(), 7.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3][..]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3][..]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5,
                ..
            }
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3][..]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.get(&[1, 2]), Some(7.0));
        assert_eq!(t.get(&[2, 0]), None);
        assert!(t.set(&[0, 3], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3][..]).unwrap();
        let r = t.reshape(&[3, 2][..]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4][..]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3][..]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.argmax().unwrap(), 2);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3][..]).unwrap();
        assert_eq!(t.argmax().unwrap(), 0);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0][..]);
        assert!(t.max().is_err());
        assert!(t.argmax().is_err());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(4);
        assert_eq!(i.sum(), 4.0);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(&[r, c]), Some(if r == c { 1.0 } else { 0.0 }));
            }
        }
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100][..]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.len() < 200);
    }

    #[test]
    fn collect_builds_rank_one() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape().dims(), &[4]);
    }

    #[test]
    fn map_and_fill() {
        let mut t = Tensor::ones(&[3][..]);
        let u = t.map(|x| x * 2.0);
        assert_eq!(u.sum(), 6.0);
        t.fill(5.0);
        assert_eq!(t.sum(), 15.0);
        t.map_inplace(|x| x - 1.0);
        assert_eq!(t.sum(), 12.0);
    }
}
