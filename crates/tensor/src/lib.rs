//! Dense `f32` tensor substrate for the FNAS reproduction.
//!
//! This crate provides the minimal numerical foundation the rest of the
//! workspace builds on: a row-major, heap-allocated [`Tensor`] with shape
//! tracking, element-wise arithmetic, 2-D linear algebra, reductions and
//! random initialisation. It deliberately implements only what the
//! from-scratch training engine (`fnas-nn`) and the NAS controller need,
//! with validated shapes and meaningful errors everywhere.
//!
//! # Examples
//!
//! ```
//! use fnas_tensor::Tensor;
//!
//! # fn main() -> Result<(), fnas_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
mod ops;
mod shape;
mod tensor;

pub use error::TensorError;
pub use init::{Init, XavierUniform};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
