//! Element-wise arithmetic, matrix products and axis reductions.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().clone(),
                right: other.shape().clone(),
                op,
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Adds `other * scale` into `self` in place (`axpy`).
    ///
    /// This is the workhorse of the SGD update in `fnas-nn`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.check_same_shape(other, "add_scaled")?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiplies every element by `scale`, producing a new tensor.
    pub fn scale(&self, scale: f32) -> Tensor {
        self.map(|x| x * scale)
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; the public arithmetic wrappers validate
    /// first and return errors instead.
    pub(crate) fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        debug_assert_eq!(self.shape(), other.shape());
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.shape().clone()).expect("zip_with preserves length")
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "dot")?;
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Matrix product of two rank-2 tensors: `(m × k) · (k × n) → (m × n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
    /// and [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use fnas_tensor::Tensor;
    /// # fn main() -> Result<(), fnas_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
    /// let b = Tensor::ones(&[3, 1]);
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c.as_slice(), &[6.0, 15.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the innermost accesses contiguous in both
        // `b` and `out`, which matters on the single-core target.
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n][..])
    }

    /// Matrix–vector product of a rank-2 tensor with a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for wrong ranks and
    /// [`TensorError::MatmulDimMismatch`] if widths disagree.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matvec",
            });
        }
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
                op: "matvec",
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        if k != v.len() {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: v.len(),
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m][..])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m][..])
    }

    /// Outer product of two rank-1 tensors: `(m) ⊗ (n) → (m × n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: if self.rank() != 1 {
                    self.rank()
                } else {
                    other.rank()
                },
                op: "outer",
            });
        }
        let (m, n) = (self.len(), other.len());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let ai = self.at(i);
            for j in 0..n {
                out[i * n + j] = ai * other.at(j);
            }
        }
        Tensor::from_vec(out, &[m, n][..])
    }

    /// Numerically stable softmax over the flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn softmax(&self) -> Result<Tensor> {
        let max = self.max()?;
        let exps: Vec<f32> = self.as_slice().iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        Tensor::from_vec(
            exps.into_iter().map(|e| e / denom).collect(),
            self.shape().clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2, 1]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = t(&[1.0, 2.0], &[2]);
        let g = t(&[10.0, 20.0], &[2]);
        a.add_scaled(&g, -0.1).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_validates() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = Tensor::eye(2);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::RankMismatch { op: "matmul", .. })
        ));
        let a = Tensor::zeros(&[2, 3][..]);
        let b = Tensor::zeros(&[4, 5][..]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 4
            })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = t(&[1.0, 0.5, 2.0], &[3]);
        let mv = a.matvec(&v).unwrap();
        let mm = a.matmul(&v.reshape(&[3, 1][..]).unwrap()).unwrap();
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, a);
        assert_eq!(a.transpose().unwrap().shape().dims(), &[3, 2]);
    }

    #[test]
    fn outer_product() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b).unwrap();
        assert_eq!(o.shape().dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let a = t(&[1000.0, 1001.0, 1002.0], &[3]);
        let s = a.softmax().unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|&x| x.is_finite() && x > 0.0));
        assert!(s.at(2) > s.at(1) && s.at(1) > s.at(0));
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        let a = t(&[1.0, 0.0], &[2]);
        let b = t(&[0.0, 1.0], &[2]);
        assert_eq!(a.dot(&b).unwrap(), 0.0);
    }

    #[test]
    fn scale_multiplies_every_element() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(a.scale(-3.0).as_slice(), &[-3.0, 6.0]);
    }
}
