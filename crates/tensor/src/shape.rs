use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), in row-major order.
///
/// A `Shape` is an ordered list of axis extents. Rank-0 shapes (scalars) are
/// permitted and have one element.
///
/// # Examples
///
/// ```
/// use fnas_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Total number of elements described by this shape.
    ///
    /// The product of all extents; `1` for a scalar shape.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` when the shape describes zero elements, i.e. at least
    /// one axis has extent `0`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The last axis always has stride 1 (for non-zero rank).
    ///
    /// # Examples
    ///
    /// ```
    /// use fnas_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-axis index, or `None` if any
    /// component is out of bounds or the rank disagrees.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut offset = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            if index[axis] >= self.dims[axis] {
                return None;
            }
            offset += index[axis] * stride;
            stride *= self.dims[axis];
        }
        Some(offset)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl<const N: usize> From<&[usize; N]> for Shape {
    fn from(dims: &[usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_extent_axis_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new(&[2, 3, 4, 5]).strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_round_trips_with_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let manual = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), Some(manual));
                }
            }
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds_and_wrong_rank() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_vecs() {
        let a: Shape = [1, 2].into();
        let b: Shape = vec![1, 2].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2]);
    }
}
