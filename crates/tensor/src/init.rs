//! Random weight initialisation strategies.

use rand::Rng;

use crate::{Shape, Tensor};

/// A strategy for filling a freshly created tensor with random values.
///
/// The trait is object-safe so layer constructors can accept
/// `&dyn Init` when heterogeneous strategies are configured at run time.
///
/// # Examples
///
/// ```
/// use fnas_tensor::{Init, XavierUniform};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = XavierUniform.init(&[16, 8].into(), &mut rng);
/// assert_eq!(w.len(), 128);
/// ```
pub trait Init {
    /// Creates a tensor of `shape` filled according to the strategy.
    fn init(&self, shape: &Shape, rng: &mut dyn rand::RngCore) -> Tensor;
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Fan-in/fan-out are derived from the first two axes; for convolution
/// weights shaped `[out_ch, in_ch, kh, kw]` the kernel area multiplies both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XavierUniform;

impl Init for XavierUniform {
    fn init(&self, shape: &Shape, rng: &mut dyn rand::RngCore) -> Tensor {
        let (fan_in, fan_out) = fans(shape);
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..shape.len()).map(|_| rng.gen_range(-a..=a)).collect();
        Tensor::from_vec(data, shape.clone()).expect("length matches by construction")
    }
}

fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        0 => (1, 1),
        1 => (shape.dim(0).max(1), shape.dim(0).max(1)),
        2 => (shape.dim(1).max(1), shape.dim(0).max(1)),
        _ => {
            // Convolution-style [out, in, spatial…]
            let receptive: usize = shape.dims()[2..].iter().product();
            (
                (shape.dim(1) * receptive).max(1),
                (shape.dim(0) * receptive).max(1),
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        assert!(lo < hi, "rand_uniform requires lo < hi");
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }

    /// Creates a tensor with elements drawn from a normal distribution
    /// `N(mean, std²)` using the Box–Muller transform.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape).expect("length matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_follow_fans() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = XavierUniform.init(&[100, 50].into(), &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a + 1e-6));
        // Should actually use the range, not collapse near zero.
        assert!(w.max().unwrap() > a * 0.5);
    }

    #[test]
    fn xavier_handles_conv_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = XavierUniform.init(&[8, 4, 3, 3].into(), &mut rng);
        assert_eq!(w.len(), 8 * 4 * 9);
        let a = (6.0f32 / ((4 * 9 + 8 * 9) as f32)).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a + 1e-6));
    }

    #[test]
    fn rand_uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000][..], -0.25, 0.75, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn rand_normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::rand_normal(&[20_000][..], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ta = Tensor::rand_uniform(&[16][..], 0.0, 1.0, &mut a);
        let tb = Tensor::rand_uniform(&[16][..], 0.0, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rand_uniform_panics_on_bad_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = Tensor::rand_uniform(&[4][..], 1.0, 1.0, &mut rng);
    }
}
