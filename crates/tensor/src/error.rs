use std::error::Error;
use std::fmt;

use crate::Shape;

/// Errors produced by tensor construction and tensor arithmetic.
///
/// Every fallible public function in this crate returns this type, so it can
/// flow through `?` in downstream crates and be wrapped as the `source()` of
/// higher-level errors.
///
/// # Examples
///
/// ```
/// use fnas_tensor::Tensor;
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(err.to_string().contains("expected 4 elements"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match the number of elements the
    /// shape requires.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
        /// The shape the caller asked for.
        shape: Shape,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An operation that requires a particular rank was called on a tensor
    /// of a different rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor it was called on.
        actual: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
        /// Axis the index addressed, if per-axis.
        axis: Option<usize>,
    },
    /// A reshape was requested into a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// A tensor that must be non-empty was empty.
    Empty {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch {
                expected,
                actual,
                shape,
            } => write!(
                f,
                "shape {shape} expected {expected} elements, got {actual}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "{op} requires matching shapes, got {left} and {right}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::IndexOutOfBounds { index, bound, axis } => match axis {
                Some(axis) => write!(f, "index {index} out of bounds {bound} on axis {axis}"),
                None => write!(f, "flat index {index} out of bounds {bound}"),
            },
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into a shape of {to} elements")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let err = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        let msg = err.to_string();
        assert!(msg.starts_with("matmul"));
        assert!(msg.contains('3') && msg.contains('4'));
    }

    #[test]
    fn display_index_with_and_without_axis() {
        let with = TensorError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: Some(1),
        };
        assert!(with.to_string().contains("axis 1"));
        let without = TensorError::IndexOutOfBounds {
            index: 9,
            bound: 4,
            axis: None,
        };
        assert!(without.to_string().contains("flat index"));
    }
}
