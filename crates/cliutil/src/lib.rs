//! Shared argv plumbing for the `fnas-*` operator CLIs.
//!
//! Every bin in the workspace (`fnas-shard`, `fnas-coord`, `fnas-worker`,
//! `fnas-store`, `fnas-ckpt`) takes the same shape of command line — a
//! subcommand followed by `--flag value` pairs — and until this crate
//! existed each one hand-rolled the same `value()` closure and
//! `parse_num` helper. They now share one implementation, so a flag
//! behaves identically no matter which bin parses it: a missing value is
//! always `"--flag needs a value"`, a malformed one is always
//! `"--flag: bad value \"...\""`.
//!
//! This crate is deliberately dependency-free (it sits below both `fnas`
//! and `fnas-store` in the workspace graph). The job-aware layer — which
//! flags make up a search job, and how they resolve to a config — lives
//! above it in `fnas::job::cli`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parses a flag's value with the canonical error message shared by
/// every bin: `"--flag: bad value \"...\""`.
///
/// # Errors
///
/// A human-readable message naming the flag and the rejected value.
pub fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: bad value {s:?}"))
}

/// A cursor over `--flag value` argument pairs.
///
/// Wraps the `while let Some(flag) = it.next()` loop every bin used to
/// write by hand: [`Args::next_flag`] yields the next flag, and
/// [`Args::value`] consumes its value with the canonical
/// `"--flag needs a value"` error.
#[derive(Debug)]
pub struct Args<'a> {
    items: &'a [String],
    at: usize,
    /// The flag most recently returned by [`Args::next_flag`], used to
    /// name the flag in `value()` errors.
    current: &'a str,
}

impl<'a> Args<'a> {
    /// A cursor at the start of `items`.
    pub fn new(items: &'a [String]) -> Self {
        Args {
            items,
            at: 0,
            current: "",
        }
    }

    /// The next flag, or `None` when the arguments are exhausted.
    pub fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.items.get(self.at)?;
        self.at += 1;
        self.current = flag;
        Some(flag)
    }

    /// The current flag's value.
    ///
    /// # Errors
    ///
    /// `"--flag needs a value"` when the arguments end before one.
    pub fn value(&mut self) -> Result<&'a str, String> {
        let value = self
            .items
            .get(self.at)
            .ok_or_else(|| format!("{} needs a value", self.current))?;
        self.at += 1;
        Ok(value)
    }

    /// The current flag's value parsed via [`parse_num`].
    ///
    /// # Errors
    ///
    /// Either helper's canonical message.
    pub fn num<T: std::str::FromStr>(&mut self) -> Result<T, String> {
        let flag = self.current;
        parse_num(flag, self.value()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn walks_flag_value_pairs() {
        let items = strings(&["--trials", "12", "--seed", "7", "--keep-all"]);
        let mut args = Args::new(&items);
        assert_eq!(args.next_flag(), Some("--trials"));
        assert_eq!(args.num::<usize>(), Ok(12));
        assert_eq!(args.next_flag(), Some("--seed"));
        assert_eq!(args.value(), Ok("7"));
        assert_eq!(args.next_flag(), Some("--keep-all"));
        assert_eq!(args.next_flag(), None);
    }

    #[test]
    fn missing_and_malformed_values_use_the_canonical_messages() {
        let items = strings(&["--trials"]);
        let mut args = Args::new(&items);
        args.next_flag();
        assert_eq!(args.value(), Err("--trials needs a value".to_string()));

        let items = strings(&["--trials", "many"]);
        let mut args = Args::new(&items);
        args.next_flag();
        assert_eq!(
            args.num::<usize>(),
            Err("--trials: bad value \"many\"".to_string())
        );
        assert_eq!(
            parse_num::<u64>("--seed", "0x7"),
            Err("--seed: bad value \"0x7\"".to_string())
        );
    }
}
