//! FPGA performance abstraction for the FNAS reproduction.
//!
//! This crate implements the complete "FNAS tool" of the DAC'19 paper plus a
//! validating cycle-level simulator:
//!
//! * [`device`] — a catalogue of FPGA resource models (DSP slices, BRAM,
//!   external bandwidth, clock) for the boards the paper evaluates on
//!   (Xilinx 7A50T, 7Z020 / PYNQ, ZU9EG) and multi-FPGA clusters;
//! * [`layer`] — convolution workload shapes (`⟨N, M, R, C, Kh, Kw⟩`) and
//!   whole-network pipelines;
//! * [`design`] — **FNAS-Design**: per-layer tiling parameters
//!   `⟨Tm, Tn, Tr, Tc⟩` chosen under load-balanced DSP/BRAM budgets
//!   (after Zhang et al., FPGA'15);
//! * [`taskgraph`] — **FNAS-GG**: the tile-based task graph with
//!   inter-layer and intra-layer dependencies;
//! * [`sched`] — **FNAS-Sched**: the three-step flexible schedule with
//!   alternating OFM/IFM reuse, plus the *fixed scheduling* baseline;
//! * [`analyzer`] — **FNAS-Analyzer**: closed-form latency (Eqs. 2–5);
//! * [`artifacts`] — the staged pipeline record ([`artifacts::HwArtifacts`]:
//!   design → graph → schedule, each built at most once) and the
//!   [`artifacts::LatencyModel`] backends (`Analytic` / `Simulated` /
//!   `PartitionedSim`);
//! * [`passes`] — the explicit lowering pipeline: the [`passes::Pass`]
//!   trait, the [`passes::PassManager`] running
//!   `design → taskgraph → partition → schedule → sim`, and the canonical
//!   pipeline fingerprint folded into `fnas-store` cache keys;
//! * [`sim`] — a discrete-event simulator executing a schedule on the
//!   pipeline of processing elements, optionally across multiple FPGAs,
//!   which stands in for the paper's physical boards (see DESIGN.md §2),
//!   plus the partitioned parallel backend ([`sim::parallel`]);
//! * [`viz`] — SVG Gantt rendering of execution traces (Fig. 4(b)-style).
//!
//! # Examples
//!
//! ```
//! use fnas_fpga::device::FpgaDevice;
//! use fnas_fpga::layer::{ConvShape, Network};
//! use fnas_fpga::design::PipelineDesign;
//! use fnas_fpga::analyzer::analyze;
//!
//! # fn main() -> Result<(), fnas_fpga::FpgaError> {
//! let net = Network::new(vec![
//!     ConvShape::square(3, 16, 32, 3)?,
//!     ConvShape::square(16, 32, 32, 3)?,
//! ])?;
//! let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
//! let report = analyze(&design)?;
//! assert!(report.latency_cycles.get() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod artifacts;
pub mod design;
pub mod device;
mod error;
pub mod layer;
pub mod passes;
pub mod sched;
pub mod sim;
pub mod taskgraph;
mod units;
pub mod viz;

pub use error::FpgaError;
pub use units::{Cycles, MacCount, Millis};

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, FpgaError>;
