//! Staged hardware artifacts and pluggable latency backends.
//!
//! The four-stage FNAS tool is a pipeline — **FNAS-Design**
//! ([`PipelineDesign`]) → **FNAS-GG** ([`TileTaskGraph`]) → **FNAS-Sched**
//! ([`Schedule`]) → **FNAS-Analyzer** / simulator — but most consumers only
//! need a prefix of it: the analytic latency model (Eqs. 2–5) reads the
//! design alone, while cycle-accurate simulation and deployment reports
//! need the graph and schedule too. [`HwArtifacts`] records the pipeline's
//! stages for one architecture so each stage is produced *at most once*
//! however many models, reports, or benches consume it: the design is
//! built eagerly (it is the buildability check), and the scheduled stage
//! (graph + schedule) is materialised lazily on first use and shared from
//! then on.
//!
//! [`LatencyModel`] abstracts the backend choice — [`Analytic`] for the
//! closed-form cost used in the inner search loop, [`Simulated`] for the
//! cycle-accurate validator, [`PartitionedSim`] for the same validator on
//! the partitioned parallel backend — so callers select fidelity per call
//! instead of via parallel ad-hoc methods.
//!
//! Since the pass-pipeline refactor the lazy lowering here is expressed as
//! a [`PassManager`] run (`taskgraph → partition → schedule`), so the
//! staged record and the explicit pipeline cannot drift apart, and the
//! per-pass wall times are recorded for telemetry
//! ([`HwArtifacts::claim_lowering_timings`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use fnas_exec::Executor;

use crate::analyzer::{analyze, AnalyzerReport};
use crate::design::PipelineDesign;
use crate::device::FpgaCluster;
use crate::layer::Network;
use crate::passes::partition::PartitionedGraph;
use crate::passes::{PassManager, PipelineIr, DEFAULT_PARTITIONS};
use crate::sched::Schedule;
use crate::sim::parallel::{simulate_design_partitioned, PartitionStats};
use crate::sim::{simulate_design, SimReport};
use crate::taskgraph::TileTaskGraph;
use crate::units::Millis;
use crate::Result;

/// Wall time of the lazy lowering passes, claimed once per artifact for
/// telemetry (see [`HwArtifacts::claim_lowering_timings`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringTimings {
    /// Nanoseconds the `taskgraph` pass took.
    pub graph_ns: u64,
    /// Nanoseconds the `partition` pass took.
    pub partition_ns: u64,
    /// Nanoseconds the `schedule` pass took.
    pub schedule_ns: u64,
}

/// The scheduled stage of the pipeline: the tile task graph (FNAS-GG) and
/// the flexible schedule over it (FNAS-Sched), always produced together.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled {
    graph: Arc<TileTaskGraph>,
    partitions: Arc<PartitionedGraph>,
    schedule: Arc<Schedule>,
}

impl Scheduled {
    /// The tile-based task graph.
    pub fn graph(&self) -> &TileTaskGraph {
        &self.graph
    }

    /// The canonical region split of [`Scheduled::graph`] used by the
    /// partitioned parallel simulator.
    pub fn partitions(&self) -> &PartitionedGraph {
        &self.partitions
    }

    /// The flexible schedule over [`Scheduled::graph`].
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

/// The staged hardware-evaluation record for one architecture.
///
/// Holds the eagerly built [`PipelineDesign`] and lazily materialises the
/// [`Scheduled`] stage behind a [`OnceLock`], so sharing one
/// `Arc<HwArtifacts>` between the analytic latency path, the simulator,
/// and deployment reporting runs each pipeline stage at most once.
///
/// # Examples
///
/// ```
/// use fnas_fpga::artifacts::{Analytic, HwArtifacts, LatencyModel, Simulated};
/// use fnas_fpga::device::{FpgaCluster, FpgaDevice};
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![
///     ConvShape::square(3, 16, 32, 3)?,
///     ConvShape::square(16, 32, 32, 3)?,
/// ])?;
/// let art = HwArtifacts::build(&net, &FpgaCluster::single(FpgaDevice::pynq()))?;
/// let fast = Analytic.latency(&art)?;
/// let exact = Simulated.latency(&art)?;
/// assert!(fast.get() > 0.0 && exact.get() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HwArtifacts {
    design: Arc<PipelineDesign>,
    scheduled: OnceLock<Result<Arc<Scheduled>>>,
    lowering: OnceLock<LoweringTimings>,
    lowering_claimed: AtomicBool,
}

impl HwArtifacts {
    /// Runs FNAS-Design for `network` on `cluster` and wraps the result.
    ///
    /// # Errors
    ///
    /// Propagates design-generation failures (the architecture is not
    /// buildable on the cluster).
    pub fn build(network: &Network, cluster: &FpgaCluster) -> Result<Self> {
        Ok(HwArtifacts::from_design(
            PipelineDesign::generate_on_cluster(network, cluster)?,
        ))
    }

    /// Wraps an already-generated design (stage 1 done elsewhere).
    pub fn from_design(design: PipelineDesign) -> Self {
        HwArtifacts {
            design: Arc::new(design),
            scheduled: OnceLock::new(),
            lowering: OnceLock::new(),
            lowering_claimed: AtomicBool::new(false),
        }
    }

    /// The FNAS-Design output (always available).
    pub fn design(&self) -> &PipelineDesign {
        &self.design
    }

    /// `true` when the scheduled stage has already been materialised.
    pub fn is_scheduled(&self) -> bool {
        self.scheduled.get().is_some()
    }

    /// The scheduled stage (graph + schedule), built on first call and
    /// shared by every later one — including across threads: concurrent
    /// first calls race benignly inside the [`OnceLock`], and exactly one
    /// result is kept.
    ///
    /// # Errors
    ///
    /// Propagates graph-generation failures; the failure is cached like a
    /// success, so repeated calls do not retry a structurally broken
    /// design.
    pub fn scheduled(&self) -> Result<Arc<Scheduled>> {
        self.scheduled
            .get_or_init(|| {
                let mut ir = PipelineIr::from_design(self.design.clone());
                PassManager::lowering(DEFAULT_PARTITIONS).run(&mut ir)?;
                let of = |name: &str| {
                    ir.timings()
                        .iter()
                        .find(|t| t.name == name)
                        .map(|t| t.nanos)
                        .unwrap_or(0)
                };
                let _ = self.lowering.set(LoweringTimings {
                    graph_ns: of("taskgraph"),
                    partition_ns: of("partition"),
                    schedule_ns: of("schedule"),
                });
                Ok(Arc::new(Scheduled {
                    graph: ir.graph().expect("lowering fills the graph").clone(),
                    partitions: ir
                        .partitions()
                        .expect("lowering fills the partitions")
                        .clone(),
                    schedule: ir.schedule().expect("lowering fills the schedule").clone(),
                }))
            })
            .clone()
    }

    /// The lazy lowering's per-pass wall times, surrendered exactly once
    /// per artifact (so shared artifacts do not double-charge telemetry).
    /// `None` before the scheduled stage exists or after the first claim.
    pub fn claim_lowering_timings(&self) -> Option<LoweringTimings> {
        let timings = self.lowering.get().copied()?;
        if self.lowering_claimed.swap(true, Ordering::Relaxed) {
            None
        } else {
            Some(timings)
        }
    }

    /// FNAS-Analyzer (Eqs. 2–5) over the design stage.
    ///
    /// # Errors
    ///
    /// Propagates analyzer failures.
    pub fn analyze(&self) -> Result<AnalyzerReport> {
        analyze(&self.design)
    }

    /// Cycle-accurate simulation of the scheduled stage.
    ///
    /// # Errors
    ///
    /// Propagates graph-generation or simulation failures.
    pub fn simulate(&self) -> Result<SimReport> {
        let scheduled = self.scheduled()?;
        simulate_design(&self.design, &scheduled.graph, &scheduled.schedule)
    }

    /// Cycle-accurate simulation on the partitioned parallel backend —
    /// byte-identical to [`HwArtifacts::simulate`], with the scheduled
    /// stage's canonical region split run on `executor` threads.
    ///
    /// # Errors
    ///
    /// Propagates graph-generation or simulation failures.
    pub fn simulate_partitioned(&self, executor: &Executor) -> Result<(SimReport, PartitionStats)> {
        let scheduled = self.scheduled()?;
        simulate_design_partitioned(
            &self.design,
            &scheduled.graph,
            &scheduled.schedule,
            &scheduled.partitions,
            executor,
        )
    }
}

/// A latency backend over staged [`HwArtifacts`].
///
/// Implementations declare which pipeline stages they consume by what they
/// touch: [`Analytic`] reads only the design, [`Simulated`] forces the
/// scheduled stage. The [`LatencyModel::name`] doubles as the memoisation
/// key suffix for callers that cache per-backend results.
pub trait LatencyModel: Send + Sync {
    /// End-to-end latency of one inference under this backend.
    ///
    /// # Errors
    ///
    /// Propagates failures of the pipeline stages the backend consumes.
    fn latency(&self, artifacts: &HwArtifacts) -> Result<Millis>;

    /// A stable, unique backend identifier (e.g. `"analytic"`).
    fn name(&self) -> &'static str;
}

/// The closed-form FNAS-Analyzer backend (Eqs. 2–5). Cheap: consumes only
/// the design stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analytic;

impl LatencyModel for Analytic {
    fn latency(&self, artifacts: &HwArtifacts) -> Result<Millis> {
        Ok(artifacts.analyze()?.latency)
    }

    fn name(&self) -> &'static str {
        "analytic"
    }
}

/// The cycle-accurate discrete-event backend. Forces the scheduled stage
/// (graph + schedule) and simulates it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulated;

impl LatencyModel for Simulated {
    fn latency(&self, artifacts: &HwArtifacts) -> Result<Millis> {
        Ok(artifacts.simulate()?.latency)
    }

    fn name(&self) -> &'static str {
        "simulated"
    }
}

/// The cycle-accurate backend on the partitioned parallel simulator:
/// byte-identical to [`Simulated`] but runs the scheduled stage's region
/// split concurrently. Shares `"simulated"`-backend caches soundly for
/// exactly that reason, while keeping its own [`LatencyModel::name`] for
/// dispatch.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedSim {
    executor: Executor,
}

impl PartitionedSim {
    /// A backend simulating on `executor` threads.
    pub fn new(executor: Executor) -> Self {
        PartitionedSim { executor }
    }

    /// A backend with a dedicated `workers`-thread pool.
    pub fn with_workers(workers: usize) -> Self {
        PartitionedSim::new(Executor::with_workers(workers))
    }
}

impl Default for PartitionedSim {
    fn default() -> Self {
        PartitionedSim::with_workers(DEFAULT_PARTITIONS)
    }
}

impl LatencyModel for PartitionedSim {
    fn latency(&self, artifacts: &HwArtifacts) -> Result<Millis> {
        Ok(artifacts.simulate_partitioned(&self.executor)?.0.latency)
    }

    fn name(&self) -> &'static str {
        "partitioned-sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use crate::layer::ConvShape;

    fn tiny_network() -> Network {
        Network::new(vec![
            ConvShape::square(3, 8, 16, 3).unwrap(),
            ConvShape::square(8, 16, 16, 3).unwrap(),
        ])
        .unwrap()
    }

    fn artifacts() -> HwArtifacts {
        HwArtifacts::build(&tiny_network(), &FpgaCluster::single(FpgaDevice::pynq())).unwrap()
    }

    #[test]
    fn scheduled_stage_is_lazy_and_shared() {
        let art = artifacts();
        assert!(!art.is_scheduled());
        let first = art.scheduled().unwrap();
        assert!(art.is_scheduled());
        let second = art.scheduled().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "stage must be built once");
        assert_eq!(first.graph().num_layers(), 2);
    }

    #[test]
    fn backends_match_direct_calls() {
        let art = artifacts();
        let analytic = Analytic.latency(&art).unwrap();
        assert_eq!(analytic, analyze(art.design()).unwrap().latency);

        let simulated = Simulated.latency(&art).unwrap();
        let sched = art.scheduled().unwrap();
        let direct = simulate_design(art.design(), sched.graph(), sched.schedule()).unwrap();
        assert_eq!(simulated, direct.latency);
    }

    #[test]
    fn backend_names_are_distinct() {
        assert_eq!(Analytic.name(), "analytic");
        assert_eq!(Simulated.name(), "simulated");
        assert_eq!(PartitionedSim::default().name(), "partitioned-sim");
        assert_ne!(Analytic.name(), Simulated.name());
    }

    #[test]
    fn partitioned_backend_is_byte_identical_to_simulated() {
        let art = artifacts();
        let single = art.simulate().unwrap();
        for workers in [0usize, 1, 2, 8] {
            let executor = Executor::with_workers(workers);
            let (report, stats) = art.simulate_partitioned(&executor).unwrap();
            assert_eq!(report, single, "workers={workers}");
            assert_eq!(
                stats.partitions_built,
                art.scheduled().unwrap().partitions().num_regions() as u64
            );
        }
        assert_eq!(
            PartitionedSim::default().latency(&art).unwrap(),
            Simulated.latency(&art).unwrap()
        );
    }

    #[test]
    fn lowering_timings_are_claimed_exactly_once() {
        let art = artifacts();
        assert_eq!(art.claim_lowering_timings(), None, "nothing lowered yet");
        art.scheduled().unwrap();
        let first = art.claim_lowering_timings();
        assert!(first.is_some());
        assert_eq!(art.claim_lowering_timings(), None, "already claimed");
    }

    #[test]
    fn analytic_does_not_force_the_scheduled_stage() {
        let art = artifacts();
        Analytic.latency(&art).unwrap();
        assert!(!art.is_scheduled(), "Eqs. 2–5 need only the design");
        Simulated.latency(&art).unwrap();
        assert!(art.is_scheduled());
    }

    #[test]
    fn concurrent_scheduling_converges_to_one_stage() {
        let art = artifacts();
        let ptrs: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| Arc::as_ptr(&art.scheduled().unwrap()) as usize))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }
}
