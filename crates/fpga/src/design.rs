//! **FNAS-Design** (component ➀): tiling-parameter selection.
//!
//! Each layer of the child network is mapped to a dedicated processing
//! element (PE); the PEs run as a pipeline on one FPGA or across a cluster
//! (§3.3 of the paper). This module decides, for every layer:
//!
//! 1. its **DSP budget** — load-balanced proportionally to the layer's MAC
//!    count, so pipeline stages have similar throughput;
//! 2. its **device** — consecutive layers are packed onto cluster devices by
//!    balancing MAC load;
//! 3. its **tiling parameters** `⟨Tm, Tn, Tr, Tc⟩` — chosen to minimise the
//!    layer's standalone cycle count subject to `Tm·Tn ≤ DSP budget` and the
//!    tile buffers fitting the per-layer BRAM budget, following the roofline
//!    methodology of Zhang et al. (FPGA'15) \[13\].
//!
//! After per-layer selection, the spatial grid is harmonised so that every
//! layer has the same number of row/col tiles — the paper's task graph maps
//! spatial tile `m` of one layer to spatial tile `m` of the next, which is
//! well-defined only on a common grid.

use crate::device::{FpgaCluster, FpgaDevice};
use crate::layer::{ConvShape, Network};
use crate::{Cycles, FpgaError, Result};

/// Bytes per activation/weight word (16-bit fixed point, as in \[13\]).
pub const WORD_BYTES: usize = 2;

/// Tiling parameters `⟨Tm, Tn, Tr, Tc⟩` for one layer (§3.3).
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::Tiling;
///
/// let t = Tiling::new(4, 2, 8, 8);
/// assert_eq!(t.dsp_slices(), 8); // a PE of Tm×Tn DSPs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling {
    /// Output-channel tile extent `Tm`.
    pub tm: usize,
    /// Input-channel tile extent `Tn`.
    pub tn: usize,
    /// Output-row tile extent `Tr`.
    pub tr: usize,
    /// Output-column tile extent `Tc`.
    pub tc: usize,
}

impl Tiling {
    /// Creates a tiling; extents are clamped to at least 1.
    pub fn new(tm: usize, tn: usize, tr: usize, tc: usize) -> Self {
        Tiling {
            tm: tm.max(1),
            tn: tn.max(1),
            tr: tr.max(1),
            tc: tc.max(1),
        }
    }

    /// DSP slices a PE with this tiling occupies: `Tm × Tn` (one 16-bit MAC
    /// each, \[13\]).
    pub fn dsp_slices(&self) -> usize {
        self.tm * self.tn
    }
}

/// The complete design of one layer's PE.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesign {
    shape: ConvShape,
    tiling: Tiling,
    device: usize,
    compute_cycles_per_task: u64,
    transfer_cycles_per_task: u64,
}

impl LayerDesign {
    /// The layer's workload shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The chosen tiling.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Index of the cluster device hosting this PE.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Number of input-channel tiles `|CHⁱᶠᵐ| = ⌈N / Tn⌉`.
    pub fn ch_ifm_tiles(&self) -> usize {
        self.shape.in_channels().div_ceil(self.tiling.tn)
    }

    /// Number of output-channel tiles `|CHᵒᶠᵐ| = ⌈M / Tm⌉`.
    pub fn ch_ofm_tiles(&self) -> usize {
        self.shape.out_channels().div_ceil(self.tiling.tm)
    }

    /// Number of row/col tiles `|RC| = ⌈R / Tr⌉ · ⌈C / Tc⌉`.
    pub fn rc_tiles(&self) -> usize {
        self.shape.out_rows().div_ceil(self.tiling.tr)
            * self.shape.out_cols().div_ceil(self.tiling.tc)
    }

    /// Per-task compute time `ET = Kh·Kw·Tr·Tc` cycles (§3.3).
    pub fn compute_cycles_per_task(&self) -> Cycles {
        Cycles::new(self.compute_cycles_per_task)
    }

    /// Per-task external-memory transfer time (IFM tile + weights + OFM
    /// tile over the device bandwidth), assuming double buffering.
    pub fn transfer_cycles_per_task(&self) -> Cycles {
        Cycles::new(self.transfer_cycles_per_task)
    }

    /// Effective per-task latency: compute and transfer overlap under double
    /// buffering, so the slower of the two dominates.
    pub fn task_cycles(&self) -> Cycles {
        Cycles::new(
            self.compute_cycles_per_task
                .max(self.transfer_cycles_per_task),
        )
    }

    /// Total number of tasks on this PE:
    /// `|CHⁱᶠᵐ| × |CHᵒᶠᵐ| × |RC|` (Fig. 3(e)).
    pub fn task_count(&self) -> usize {
        self.ch_ifm_tiles() * self.ch_ofm_tiles() * self.rc_tiles()
    }

    /// Bytes of one OFM tile (for inter-device transfer costing).
    pub fn ofm_tile_bytes(&self) -> usize {
        self.tiling.tm * self.tiling.tr * self.tiling.tc * WORD_BYTES
    }

    /// On-chip buffer footprint of this PE in bytes (double-buffered IFM,
    /// OFM and weight tiles).
    pub fn bram_bytes(&self) -> usize {
        bram_usage(&self.shape, &self.tiling)
    }
}

/// Tile-buffer footprint in bytes: double-buffered IFM, OFM and weight
/// buffers (ping-pong, hence the factor 2).
fn bram_usage(shape: &ConvShape, t: &Tiling) -> usize {
    let in_r = t.tr + shape.kernel_h() - 1;
    let in_c = t.tc + shape.kernel_w() - 1;
    let ifm = t.tn * in_r * in_c;
    let ofm = t.tm * t.tr * t.tc;
    let wei = t.tm * t.tn * shape.kernel_h() * shape.kernel_w();
    2 * (ifm + ofm + wei) * WORD_BYTES
}

fn transfer_bytes_per_task(shape: &ConvShape, t: &Tiling) -> usize {
    let in_r = t.tr + shape.kernel_h() - 1;
    let in_c = t.tc + shape.kernel_w() - 1;
    let ifm = t.tn * in_r * in_c;
    let ofm = t.tm * t.tr * t.tc;
    let wei = t.tm * t.tn * shape.kernel_h() * shape.kernel_w();
    (ifm + ofm + wei) * WORD_BYTES
}

/// Standalone cycle count of a layer under tiling `t` (the \[13\] roofline
/// compute term): tasks × per-task effective latency.
fn standalone_cycles(shape: &ConvShape, t: &Tiling, bw: f64) -> u64 {
    let tasks = (shape.out_channels().div_ceil(t.tm)
        * shape.in_channels().div_ceil(t.tn)
        * shape.out_rows().div_ceil(t.tr)
        * shape.out_cols().div_ceil(t.tc)) as u64;
    let compute = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
    let transfer = (transfer_bytes_per_task(shape, t) as f64 / bw).ceil() as u64;
    tasks * compute.max(transfer)
}

/// A full pipeline design: one PE per layer, mapped onto a cluster.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 16, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// assert_eq!(design.layers().len(), 1);
/// assert!(design.layers()[0].tiling().dsp_slices() <= 220);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineDesign {
    layers: Vec<LayerDesign>,
    cluster: FpgaCluster,
}

impl PipelineDesign {
    /// Designs the pipeline for a single FPGA.
    ///
    /// # Errors
    ///
    /// See [`PipelineDesign::generate_on_cluster`].
    pub fn generate(network: &Network, device: &FpgaDevice) -> Result<Self> {
        PipelineDesign::generate_on_cluster(network, &FpgaCluster::single(device.clone()))
    }

    /// Designs the pipeline across a cluster: layers are packed onto devices
    /// by MAC load, then each layer's tiling is chosen within its device
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InsufficientResources`] when there are fewer DSP
    /// slices than layers on some device, or when even a 1×1×1×1 tile does
    /// not fit the per-layer BRAM budget.
    pub fn generate_on_cluster(network: &Network, cluster: &FpgaCluster) -> Result<Self> {
        let assignment = assign_devices(network, cluster);
        let mut layers = Vec::with_capacity(network.len());
        for (dev_idx, device) in cluster.devices().iter().enumerate() {
            let members: Vec<usize> = (0..network.len())
                .filter(|&i| assignment[i] == dev_idx)
                .collect();
            if members.is_empty() {
                continue;
            }
            let budgets = dsp_budgets(network, &members, device.dsp_slices())?;
            let bram_each = device.bram_bytes() / members.len();
            // The external memory bus is shared by every PE on the device,
            // so each layer sees its fair fraction of the bandwidth.
            let bw_each = device.bandwidth_bytes_per_cycle() / members.len() as f64;
            for (&layer_idx, &dsp) in members.iter().zip(&budgets) {
                let shape = network.layers()[layer_idx];
                let tiling = choose_tiling(&shape, dsp, bram_each, bw_each)?;
                layers.push((
                    layer_idx,
                    make_layer_design(shape, tiling, dev_idx, device, bw_each),
                ));
            }
        }
        layers.sort_by_key(|(i, _)| *i);
        let mut layers: Vec<LayerDesign> = layers.into_iter().map(|(_, d)| d).collect();
        harmonize_spatial_grid(&mut layers, cluster);
        Ok(PipelineDesign {
            layers,
            cluster: cluster.clone(),
        })
    }

    /// Per-layer designs, in pipeline order.
    pub fn layers(&self) -> &[LayerDesign] {
        &self.layers
    }

    /// The cluster this design targets.
    pub fn cluster(&self) -> &FpgaCluster {
        &self.cluster
    }

    /// Pipeline clock in MHz (slowest device).
    pub fn clock_mhz(&self) -> f64 {
        self.cluster.pipeline_clock_mhz()
    }

    /// Cycles to ship one OFM tile of layer `i` to layer `i+1`, zero when
    /// both PEs share a device.
    pub fn boundary_transfer_cycles(&self, producer: usize) -> Cycles {
        let consumer = producer + 1;
        if consumer >= self.layers.len()
            || self.layers[producer].device() == self.layers[consumer].device()
        {
            return Cycles::new(0);
        }
        let bytes = self.layers[producer].ofm_tile_bytes() as f64;
        Cycles::new((bytes / self.cluster.link_bytes_per_cycle()).ceil() as u64)
    }
}

fn make_layer_design(
    shape: ConvShape,
    tiling: Tiling,
    device: usize,
    dev: &FpgaDevice,
    bw_each: f64,
) -> LayerDesign {
    let _ = dev;
    let compute = (shape.kernel_h() * shape.kernel_w() * tiling.tr * tiling.tc) as u64;
    let transfer = (transfer_bytes_per_task(&shape, &tiling) as f64 / bw_each).ceil() as u64;
    LayerDesign {
        shape,
        tiling,
        device,
        compute_cycles_per_task: compute,
        transfer_cycles_per_task: transfer,
    }
}

/// Packs consecutive layers onto devices balancing MAC load.
fn assign_devices(network: &Network, cluster: &FpgaCluster) -> Vec<usize> {
    let n_dev = cluster.len();
    if n_dev == 1 {
        return vec![0; network.len()];
    }
    let total: u64 = network.total_macs().get();
    let target = total as f64 / n_dev as f64;
    let mut assignment = vec![0usize; network.len()];
    let mut dev = 0usize;
    let mut acc = 0u64;
    for (i, layer) in network.layers().iter().enumerate() {
        let w = layer.macs().get();
        // Move to the next device when this one is "full", but never strand
        // trailing layers: keep at least one layer per remaining device only
        // if layers remain to fill them.
        if dev + 1 < n_dev && acc > 0 && (acc as f64 + w as f64 / 2.0) > target {
            dev += 1;
            acc = 0;
        }
        assignment[i] = dev;
        acc += w;
    }
    assignment
}

/// Splits `total_dsp` over the given layers proportionally to MACs.
fn dsp_budgets(network: &Network, members: &[usize], total_dsp: usize) -> Result<Vec<usize>> {
    if total_dsp < members.len() {
        return Err(FpgaError::InsufficientResources {
            resource: "DSP slices",
            needed: members.len() as u64,
            available: total_dsp as u64,
        });
    }
    let weights: Vec<u64> = members
        .iter()
        .map(|&i| network.layers()[i].macs().get())
        .collect();
    let total_w: u64 = weights.iter().sum();
    let mut budgets: Vec<usize> = weights
        .iter()
        .map(|&w| (((total_dsp as u128 * w as u128) / total_w.max(1) as u128) as usize).max(1))
        .collect();
    // Trim overshoot caused by the max(1) floor, largest budgets first.
    let mut sum: usize = budgets.iter().sum();
    while sum > total_dsp {
        let imax = (0..budgets.len())
            .max_by_key(|&i| budgets[i])
            .expect("members is non-empty");
        if budgets[imax] <= 1 {
            break;
        }
        budgets[imax] -= 1;
        sum -= 1;
    }
    Ok(budgets)
}

/// Enumerates the feasible tilings of one layer under explicit budgets and
/// returns the best `top_n`, sorted by standalone cycle count (ties broken
/// towards smaller per-task latency, then more DSPs).
///
/// This exposes FNAS-Design's inner search for design-space exploration:
/// the first entry is exactly what [`PipelineDesign::generate`] would pick
/// for the same budgets.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::explore_tilings;
/// use fnas_fpga::layer::ConvShape;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let shape = ConvShape::square(8, 16, 16, 3)?;
/// let candidates = explore_tilings(&shape, 64, 64 * 1024, 8.0, 5);
/// assert!(!candidates.is_empty());
/// assert!(candidates[0].1 <= candidates.last().expect("non-empty").1);
/// # Ok(())
/// # }
/// ```
pub fn explore_tilings(
    shape: &ConvShape,
    dsp_budget: usize,
    bram_budget: usize,
    bandwidth_bytes_per_cycle: f64,
    top_n: usize,
) -> Vec<(Tiling, Cycles)> {
    let mut candidates: Vec<(Tiling, u64)> = Vec::new();
    let m = shape.out_channels();
    let n = shape.in_channels();
    for tm in 1..=m.min(dsp_budget) {
        let tn_cap = n.min(dsp_budget / tm);
        for tn in 1..=tn_cap {
            let Some((tr0, tc0)) = fit_spatial(shape, tm, tn, bram_budget) else {
                continue;
            };
            for (tr, tc) in spatial_candidates(tr0, tc0) {
                let t = Tiling::new(tm, tn, tr, tc);
                if bram_usage(shape, &t) > bram_budget {
                    continue;
                }
                candidates.push((t, standalone_cycles(shape, &t, bandwidth_bytes_per_cycle)));
            }
        }
    }
    candidates.sort_by_key(|&(t, cycles)| {
        let et = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
        (
            cycles,
            et,
            std::cmp::Reverse(t.dsp_slices()),
            std::cmp::Reverse(t.tm),
        )
    });
    candidates.dedup_by_key(|&mut (t, _)| t);
    candidates
        .into_iter()
        .take(top_n)
        .map(|(t, c)| (t, Cycles::new(c)))
        .collect()
}

/// Chooses `⟨Tm, Tn, Tr, Tc⟩` minimising the standalone cycle count.
fn choose_tiling(
    shape: &ConvShape,
    dsp_budget: usize,
    bram_budget: usize,
    bw: f64,
) -> Result<Tiling> {
    let m = shape.out_channels();
    let n = shape.in_channels();
    let mut best: Option<(u64, Tiling)> = None;
    for tm in 1..=m.min(dsp_budget) {
        let tn_cap = n.min(dsp_budget / tm);
        if tn_cap == 0 {
            continue;
        }
        for tn in 1..=tn_cap {
            let Some((tr0, tc0)) = fit_spatial(shape, tm, tn, bram_budget) else {
                continue;
            };
            // Refinement: whole-plane tiles minimise ceil-rounding but
            // serialise the pipeline (a consumer waits for full-plane OFM
            // tiles). Among spatial tilings with the same standalone cycle
            // count, smaller tiles give smaller per-task latency and hence
            // smaller inter-layer start deltas (Eqs. 3/4), so prefer them.
            for (tr, tc) in spatial_candidates(tr0, tc0) {
                let t = Tiling::new(tm, tn, tr, tc);
                if bram_usage(shape, &t) > bram_budget {
                    continue;
                }
                let cycles = standalone_cycles(shape, &t, bw);
                let et = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
                let better = match &best {
                    None => true,
                    Some((c, bt)) => {
                        let bet = (shape.kernel_h() * shape.kernel_w() * bt.tr * bt.tc) as u64;
                        cycles < *c
                            || (cycles == *c && et < bet)
                            || (cycles == *c && et == bet && t.dsp_slices() > bt.dsp_slices())
                            || (cycles == *c
                                && et == bet
                                && t.dsp_slices() == bt.dsp_slices()
                                && t.tm > bt.tm)
                    }
                };
                if better {
                    best = Some((cycles, t));
                }
            }
        }
    }
    best.map(|(_, t)| t)
        .ok_or(FpgaError::InsufficientResources {
            resource: "BRAM bytes",
            needed: bram_usage(shape, &Tiling::new(1, 1, 1, 1)) as u64,
            available: bram_budget as u64,
        })
}

/// Per-layer entry of a [`UtilizationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerUtilization {
    /// Layer index in the pipeline.
    pub layer: usize,
    /// Hosting device index.
    pub device: usize,
    /// DSP slices the PE occupies (`Tm × Tn`).
    pub dsp_slices: usize,
    /// Tile-buffer bytes the PE occupies.
    pub bram_bytes: usize,
    /// Fraction of the PE's raw MAC throughput the layer actually uses
    /// (losses come from `⌈·⌉` tile rounding and transfer-bound tasks).
    pub mac_efficiency: f64,
    /// `true` when the per-task latency is set by compute rather than by
    /// the memory bus.
    pub compute_bound: bool,
}

/// Resource accounting for a whole pipeline design.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 16, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let u = design.utilization();
/// assert!(u.dsp_used <= u.dsp_available);
/// assert!(u.per_layer[0].mac_efficiency <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// One entry per layer, in pipeline order.
    pub per_layer: Vec<LayerUtilization>,
    /// DSP slices occupied across the cluster.
    pub dsp_used: usize,
    /// DSP slices the cluster offers.
    pub dsp_available: usize,
    /// Tile-buffer bytes occupied across the cluster.
    pub bram_used: usize,
    /// BRAM bytes the cluster offers.
    pub bram_available: usize,
}

impl PipelineDesign {
    /// Computes the resource accounting of this design.
    pub fn utilization(&self) -> UtilizationReport {
        let per_layer: Vec<LayerUtilization> = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let macs = l.shape().macs().get() as f64;
                let pe_cycles = (l.task_count() as u64 * l.task_cycles().get()) as f64;
                let dsp = l.tiling().dsp_slices();
                LayerUtilization {
                    layer: i,
                    device: l.device(),
                    dsp_slices: dsp,
                    bram_bytes: l.bram_bytes(),
                    mac_efficiency: if pe_cycles > 0.0 {
                        (macs / (pe_cycles * dsp as f64)).min(1.0)
                    } else {
                        0.0
                    },
                    compute_bound: l.compute_cycles_per_task() >= l.transfer_cycles_per_task(),
                }
            })
            .collect();
        UtilizationReport {
            dsp_used: per_layer.iter().map(|l| l.dsp_slices).sum(),
            dsp_available: self.cluster.total_dsp_slices(),
            bram_used: per_layer.iter().map(|l| l.bram_bytes).sum(),
            bram_available: self.cluster.total_bram_bytes(),
            per_layer,
        }
    }
}

/// Spatial-tiling refinement candidates derived from the BRAM-maximal
/// `(tr0, tc0)`: the same extents at 1×, ½× and ¼× on each axis.
fn spatial_candidates(tr0: usize, tc0: usize) -> Vec<(usize, usize)> {
    let steps = |x: usize| {
        let mut v = vec![x];
        if x >= 2 {
            v.push(x.div_ceil(2));
        }
        if x >= 4 {
            v.push(x.div_ceil(4));
        }
        v
    };
    let mut out = Vec::new();
    for &tr in &steps(tr0) {
        for &tc in &steps(tc0) {
            out.push((tr, tc));
        }
    }
    out
}

/// Largest `(Tr, Tc)` whose buffers fit `bram_budget`, shrinking the larger
/// extent first; `None` if not even `(1, 1)` fits.
fn fit_spatial(
    shape: &ConvShape,
    tm: usize,
    tn: usize,
    bram_budget: usize,
) -> Option<(usize, usize)> {
    let (mut tr, mut tc) = (shape.out_rows(), shape.out_cols());
    loop {
        let t = Tiling::new(tm, tn, tr, tc);
        if bram_usage(shape, &t) <= bram_budget {
            return Some((tr, tc));
        }
        if tr == 1 && tc == 1 {
            return None;
        }
        if tr >= tc {
            tr = (tr / 2).max(1);
        } else {
            tc = (tc / 2).max(1);
        }
    }
}

/// Forces a common spatial grid across the pipeline so that spatial tile `m`
/// of layer `i+1` corresponds to spatial tile `m` of layer `i` (Fig. 3).
///
/// Layers may have slightly different spatial extents (even kernels shrink
/// the plane by one), and not every tile count is achievable by a uniform
/// tile extent (`⌈25/tr⌉ = 6` has no solution), so the harmoniser picks the
/// **largest tile count every layer can realise exactly**, backing off
/// further if a layer's buffers would no longer fit its BRAM budget.
fn harmonize_spatial_grid(layers: &mut [LayerDesign], cluster: &FpgaCluster) {
    let mut per_device = vec![0usize; cluster.len()];
    for layer in layers.iter() {
        per_device[layer.device] += 1;
    }
    let bram_budget = |layer: &LayerDesign| {
        cluster.devices()[layer.device].bram_bytes() / per_device[layer.device].max(1)
    };

    // A grid count `g` is realisable for extent `e` iff ⌈e/⌈e/g⌉⌉ = g.
    let feasible = |e: usize, g: usize| e.div_ceil(e.div_ceil(g)) == g;
    let max_grid = |extents: &[usize], target: usize| {
        (1..=target)
            .rev()
            .find(|&g| extents.iter().all(|&e| g <= e && feasible(e, g)))
            .unwrap_or(1)
    };

    let rows: Vec<usize> = layers.iter().map(|l| l.shape.out_rows()).collect();
    let cols: Vec<usize> = layers.iter().map(|l| l.shape.out_cols()).collect();
    let target_r = layers
        .iter()
        .map(|l| l.shape.out_rows().div_ceil(l.tiling.tr))
        .max()
        .unwrap_or(1);
    let target_c = layers
        .iter()
        .map(|l| l.shape.out_cols().div_ceil(l.tiling.tc))
        .max()
        .unwrap_or(1);

    let mut grid_r = max_grid(&rows, target_r);
    let mut grid_c = max_grid(&cols, target_c);
    loop {
        // Larger tiles (smaller grids) can overflow a layer's BRAM budget;
        // back off the finer axis until everything fits.
        let overflow = layers.iter().any(|layer| {
            let tr = layer.shape.out_rows().div_ceil(grid_r);
            let tc = layer.shape.out_cols().div_ceil(grid_c);
            let t = Tiling::new(layer.tiling.tm, layer.tiling.tn, tr, tc);
            bram_usage(&layer.shape, &t) > bram_budget(layer)
        });
        if !overflow || (grid_r == 1 && grid_c == 1) {
            break;
        }
        // Shrinking tiles means *increasing* the grid count; move towards
        // the per-layer extents, which always fit (they were chosen under
        // the same budgets).
        if grid_r <= grid_c {
            let next = max_grid(
                &rows,
                grid_r
                    .saturating_mul(2)
                    .min(rows.iter().copied().min().unwrap_or(1)),
            );
            if next == grid_r {
                break;
            }
            grid_r = next;
        } else {
            let next = max_grid(
                &cols,
                grid_c
                    .saturating_mul(2)
                    .min(cols.iter().copied().min().unwrap_or(1)),
            );
            if next == grid_c {
                break;
            }
            grid_c = next;
        }
    }

    for layer in layers.iter_mut() {
        let tr = layer.shape.out_rows().div_ceil(grid_r);
        let tc = layer.shape.out_cols().div_ceil(grid_c);
        let tiling = Tiling::new(layer.tiling.tm, layer.tiling.tn, tr, tc);
        let dev = &cluster.devices()[layer.device];
        let bw_each = dev.bandwidth_bytes_per_cycle() / per_device[layer.device].max(1) as f64;
        *layer = make_layer_design(layer.shape, tiling, layer.device, dev, bw_each);
    }
    debug_assert!(
        layers
            .windows(2)
            .all(|w| w[0].rc_tiles() == w[1].rc_tiles()),
        "harmonisation must equalise spatial grids"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net4(filters: [usize; 4]) -> Network {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        Network::new(layers).unwrap()
    }

    #[test]
    fn design_respects_dsp_budget() {
        let net = net4([64, 64, 128, 64]);
        let dev = FpgaDevice::pynq();
        let d = PipelineDesign::generate(&net, &dev).unwrap();
        let used: usize = d.layers().iter().map(|l| l.tiling().dsp_slices()).sum();
        assert!(
            used <= dev.dsp_slices(),
            "used {used} DSPs of {}",
            dev.dsp_slices()
        );
        assert_eq!(d.layers().len(), 4);
    }

    #[test]
    fn design_respects_bram_budget() {
        let net = net4([64, 64, 64, 64]);
        let dev = FpgaDevice::xc7a50t();
        let d = PipelineDesign::generate(&net, &dev).unwrap();
        let per_layer = dev.bram_bytes() / 4;
        for l in d.layers() {
            assert!(
                l.bram_bytes() <= per_layer,
                "layer buffers {} exceed budget {per_layer}",
                l.bram_bytes()
            );
        }
    }

    #[test]
    fn bigger_device_is_never_slower() {
        let net = net4([64, 128, 128, 64]);
        let small = PipelineDesign::generate(&net, &FpgaDevice::xc7a50t()).unwrap();
        let large = PipelineDesign::generate(&net, &FpgaDevice::zu9eg()).unwrap();
        let cycles = |d: &PipelineDesign| -> u64 {
            d.layers()
                .iter()
                .map(|l| l.task_count() as u64 * l.task_cycles().get())
                .sum()
        };
        assert!(cycles(&large) <= cycles(&small));
    }

    #[test]
    fn tilings_never_exceed_layer_extents() {
        let net = net4([9, 18, 36, 9]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::zu9eg()).unwrap();
        for l in d.layers() {
            assert!(l.tiling().tm <= l.shape().out_channels());
            assert!(l.tiling().tn <= l.shape().in_channels());
            assert!(l.tiling().tr <= l.shape().out_rows());
            assert!(l.tiling().tc <= l.shape().out_cols());
        }
    }

    #[test]
    fn spatial_grid_is_harmonised() {
        let net = net4([64, 64, 64, 64]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::xc7a50t()).unwrap();
        let grids: Vec<usize> = d.layers().iter().map(LayerDesign::rc_tiles).collect();
        assert!(grids.windows(2).all(|w| w[0] == w[1]), "grids {grids:?}");
    }

    #[test]
    fn too_many_layers_for_dsps_errors() {
        let tiny = FpgaDevice::new("tiny", 2, 1 << 20, 4.0, 100.0).unwrap();
        let net = net4([4, 4, 4, 4]);
        let err = PipelineDesign::generate(&net, &tiny).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::InsufficientResources {
                resource: "DSP slices",
                ..
            }
        ));
    }

    #[test]
    fn microscopic_bram_errors() {
        let dev = FpgaDevice::new("nobram", 64, 8, 4.0, 100.0).unwrap();
        let net = Network::new(vec![ConvShape::square(3, 8, 16, 3).unwrap()]).unwrap();
        let err = PipelineDesign::generate(&net, &dev).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::InsufficientResources {
                resource: "BRAM bytes",
                ..
            }
        ));
    }

    #[test]
    fn cluster_design_spreads_layers() {
        let net = net4([64, 64, 64, 64]);
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 4.0).unwrap();
        let d = PipelineDesign::generate_on_cluster(&net, &cluster).unwrap();
        let devices: Vec<usize> = d.layers().iter().map(LayerDesign::device).collect();
        assert!(devices.contains(&0));
        assert!(devices.contains(&1));
        // Assignment is monotone (consecutive layers).
        assert!(devices.windows(2).all(|w| w[0] <= w[1]));
        // Crossing a device boundary costs cycles; staying does not.
        let boundary = devices.windows(2).position(|w| w[0] != w[1]).unwrap();
        assert!(d.boundary_transfer_cycles(boundary).get() > 0);
        if boundary > 0 {
            assert_eq!(d.boundary_transfer_cycles(boundary - 1).get(), 0);
        }
    }

    #[test]
    fn dsp_budgets_are_proportional_to_macs() {
        // Layer 1 has 4× the MACs of layer 0 (channels 16→64 vs 4→16... use
        // clean ratio): two layers with MAC ratio 1:3 should get budgets
        // roughly 1:3.
        let l0 = ConvShape::square(4, 4, 16, 3).unwrap();
        let l1 = ConvShape::new(4, 12, 16, 16, 3, 3).unwrap();
        let net = Network::new(vec![l0, l1]).unwrap();
        let budgets = dsp_budgets(&net, &[0, 1], 100).unwrap();
        assert!(budgets[1] > budgets[0] * 2, "budgets {budgets:?}");
        assert!(budgets.iter().sum::<usize>() <= 100);
    }

    #[test]
    fn explore_tilings_is_sorted_and_budgeted() {
        let shape = ConvShape::square(16, 32, 16, 3).unwrap();
        let candidates = explore_tilings(&shape, 100, 32 * 1024, 8.0, 10);
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= 10);
        for pair in candidates.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        for (t, _) in &candidates {
            assert!(t.dsp_slices() <= 100);
            assert!(bram_usage(&shape, t) <= 32 * 1024);
            assert!(t.tm <= 32 && t.tn <= 16);
        }
    }

    #[test]
    fn explore_tilings_best_matches_choose_tiling() {
        let shape = ConvShape::square(9, 18, 28, 5).unwrap();
        let best = choose_tiling(&shape, 55, 64 * 1024, 10.0).unwrap();
        let explored = explore_tilings(&shape, 55, 64 * 1024, 10.0, 1);
        assert_eq!(explored[0].0, best);
    }

    #[test]
    fn explore_tilings_empty_when_nothing_fits() {
        let shape = ConvShape::square(3, 8, 16, 3).unwrap();
        assert!(explore_tilings(&shape, 8, 4, 8.0, 5).is_empty());
    }

    #[test]
    fn utilization_accounts_every_layer() {
        let net = net4([64, 64, 128, 64]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let u = d.utilization();
        assert_eq!(u.per_layer.len(), 4);
        assert!(u.dsp_used <= u.dsp_available);
        assert!(u.bram_used <= u.bram_available);
        for l in &u.per_layer {
            assert!(l.mac_efficiency > 0.0 && l.mac_efficiency <= 1.0);
            assert!(l.dsp_slices > 0);
        }
        // Load balancing should keep the design from starving any layer:
        // at least half the device's DSPs are in use for this workload.
        assert!(
            u.dsp_used * 2 >= u.dsp_available,
            "{} of {}",
            u.dsp_used,
            u.dsp_available
        );
    }

    #[test]
    fn task_cycles_is_max_of_compute_and_transfer() {
        let net = Network::new(vec![ConvShape::square(3, 8, 16, 3).unwrap()]).unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let l = &d.layers()[0];
        assert_eq!(
            l.task_cycles().get(),
            l.compute_cycles_per_task()
                .get()
                .max(l.transfer_cycles_per_task().get())
        );
    }
}
