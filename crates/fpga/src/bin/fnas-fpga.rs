//! `fnas-fpga` — debug CLI for the hardware-oracle pass pipeline.
//!
//! The `pipeline` verb lowers one architecture through the standard pass
//! pipeline (`design → taskgraph → partition → schedule → sim`) and dumps,
//! per pass: its position, name, semantics fingerprint, wall time, and the
//! IR slots filled so far. It also prints the combined pipeline
//! fingerprint next to the canonical one folded into `fnas-store` cache
//! keys, so a mismatch between a local pipeline variant and the store
//! schema is visible at a glance. `--gantt` additionally renders the
//! executed schedule as an SVG chart via `fnas_fpga::viz`.
//!
//! ```text
//! fnas-fpga pipeline 16,32,64 --image 32 --partitions 4 --parallel
//! ```

use std::process::ExitCode;
use std::time::Instant;

use fnas_exec::Executor;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::layer::{ConvShape, Network};
use fnas_fpga::passes::{
    canonical_pipeline_fingerprint, DesignPass, GraphPass, PartitionPass, PassManager, PipelineIr,
    SchedulePass, SimPass, DEFAULT_PARTITIONS,
};
use fnas_fpga::sim::simulate_traced;
use fnas_fpga::viz::{render_gantt, GanttOptions};
use fnas_fpga::Cycles;

const USAGE: &str = "\
fnas-fpga — debug tools for the FPGA pass pipeline

USAGE:
    fnas-fpga pipeline <filters> [OPTIONS]

ARGS:
    <filters>         comma-separated output channels per layer, e.g. 16,32,64

OPTIONS:
    --input <N>       input channels of the first layer [default: 3]
    --image <N>       square feature-map size [default: 32]
    --kernel <N>      square kernel size [default: 3]
    --device <NAME>   pynq | 7a50t | 7z020 | zu9eg [default: pynq]
    --partitions <N>  region count for the partition pass [default: 4]
    --parallel        simulate on the partitioned parallel backend
    --workers <N>     worker threads for --parallel [default: partitions]
    --gantt <PATH>    write an SVG Gantt chart of the executed schedule
    -h, --help        print this help
";

struct Options {
    filters: Vec<usize>,
    input: usize,
    image: usize,
    kernel: usize,
    device: FpgaDevice,
    partitions: usize,
    parallel: bool,
    workers: Option<usize>,
    gantt: Option<String>,
}

fn parse_device(name: &str) -> Result<FpgaDevice, String> {
    match name {
        "pynq" => Ok(FpgaDevice::pynq()),
        "7a50t" => Ok(FpgaDevice::xc7a50t()),
        "7z020" => Ok(FpgaDevice::xc7z020()),
        "zu9eg" => Ok(FpgaDevice::zu9eg()),
        other => Err(format!(
            "unknown device `{other}` (expected pynq, 7a50t, 7z020 or zu9eg)"
        )),
    }
}

fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<usize>()
        .map_err(|_| format!("{flag} expects an integer, got `{raw}`"))
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut iter = args.into_iter();
    let filters_raw = iter.next().ok_or("missing <filters> argument")?;
    let filters: Vec<usize> = filters_raw
        .split(',')
        .map(|f| {
            f.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad filter count `{f}` in `{filters_raw}`"))
        })
        .collect::<Result<_, _>>()?;
    if filters.is_empty() {
        return Err("at least one layer is required".to_string());
    }
    let mut opts = Options {
        filters,
        input: 3,
        image: 32,
        kernel: 3,
        device: FpgaDevice::pynq(),
        partitions: DEFAULT_PARTITIONS,
        parallel: false,
        workers: None,
        gantt: None,
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--input" => opts.input = parse_usize("--input", iter.next())?,
            "--image" => opts.image = parse_usize("--image", iter.next())?,
            "--kernel" => opts.kernel = parse_usize("--kernel", iter.next())?,
            "--device" => {
                let name = iter.next().ok_or("--device needs a value")?;
                opts.device = parse_device(&name)?;
            }
            "--partitions" => opts.partitions = parse_usize("--partitions", iter.next())?,
            "--parallel" => opts.parallel = true,
            "--workers" => opts.workers = Some(parse_usize("--workers", iter.next())?),
            "--gantt" => opts.gantt = Some(iter.next().ok_or("--gantt needs a path")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn build_network(opts: &Options) -> Result<Network, String> {
    let mut layers = Vec::new();
    let mut prev = opts.input;
    for &f in &opts.filters {
        layers
            .push(ConvShape::square(prev, f, opts.image, opts.kernel).map_err(|e| e.to_string())?);
        prev = f;
    }
    Network::new(layers).map_err(|e| e.to_string())
}

fn dump_pipeline(opts: &Options) -> Result<(), String> {
    let network = build_network(opts)?;
    let cluster = FpgaCluster::single(opts.device.clone());
    let workers = opts.workers.unwrap_or(opts.partitions);
    let sim_pass = if opts.parallel {
        SimPass::partitioned(Executor::with_workers(workers))
    } else {
        SimPass::single_threaded()
    };
    let manager = PassManager::new(vec![
        Box::new(DesignPass),
        Box::new(GraphPass),
        Box::new(PartitionPass {
            partitions: opts.partitions,
        }),
        Box::new(SchedulePass),
        Box::new(sim_pass),
    ]);

    println!(
        "pipeline for {} layers on {} ({} mode, {} partitions)",
        opts.filters.len(),
        opts.device.name(),
        if opts.parallel {
            "partitioned parallel"
        } else {
            "single-threaded"
        },
        opts.partitions,
    );
    println!(
        "pipeline fingerprint {:016x} (canonical store key uses {:016x})",
        manager.fingerprint(),
        canonical_pipeline_fingerprint(),
    );
    println!();

    let mut ir = PipelineIr::for_network(network, cluster);
    for (i, pass) in manager.passes().iter().enumerate() {
        let t0 = Instant::now();
        pass.run(&mut ir).map_err(|e| e.to_string())?;
        let nanos = t0.elapsed().as_nanos() as u64;
        println!(
            "{:>2}. {:<10} fingerprint {:016x}  {:>10} ns",
            i + 1,
            pass.name(),
            pass.fingerprint(),
            nanos,
        );
        println!("    ir: {}", ir.summary());
    }
    if let Some(stats) = ir.partition_stats() {
        println!();
        println!(
            "partitioned sim: {} partitions built, {} cross-partition events",
            stats.partitions_built, stats.cross_partition_events,
        );
    }

    if let Some(path) = &opts.gantt {
        let design = ir.design().ok_or("design slot empty after pipeline")?;
        let graph = ir.graph().ok_or("graph slot empty after pipeline")?;
        let schedule = ir.schedule().ok_or("schedule slot empty after pipeline")?;
        let transfers: Vec<Cycles> = (0..graph.num_layers().saturating_sub(1))
            .map(|i| design.boundary_transfer_cycles(i))
            .collect();
        let (_, trace) = simulate_traced(graph, schedule, &transfers).map_err(|e| e.to_string())?;
        let svg = render_gantt(&trace, &GanttOptions::default());
        std::fs::write(path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        println!();
        println!("gantt chart written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let verb = args.remove(0);
    if verb != "pipeline" {
        eprintln!("unknown verb `{verb}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match dump_pipeline(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
