//! Per-layer roofline tiling search: buffer sizing, candidate enumeration
//! and the `⟨Tm, Tn, Tr, Tc⟩` selection of Zhang et al. (FPGA'15) \[13\].

use crate::layer::ConvShape;
use crate::{Cycles, FpgaError, Result};

use super::{Tiling, WORD_BYTES};

/// Tile-buffer footprint in bytes: double-buffered IFM, OFM and weight
/// buffers (ping-pong, hence the factor 2).
pub(super) fn bram_usage(shape: &ConvShape, t: &Tiling) -> usize {
    let in_r = t.tr + shape.kernel_h() - 1;
    let in_c = t.tc + shape.kernel_w() - 1;
    let ifm = t.tn * in_r * in_c;
    let ofm = t.tm * t.tr * t.tc;
    let wei = t.tm * t.tn * shape.kernel_h() * shape.kernel_w();
    2 * (ifm + ofm + wei) * WORD_BYTES
}

pub(super) fn transfer_bytes_per_task(shape: &ConvShape, t: &Tiling) -> usize {
    let in_r = t.tr + shape.kernel_h() - 1;
    let in_c = t.tc + shape.kernel_w() - 1;
    let ifm = t.tn * in_r * in_c;
    let ofm = t.tm * t.tr * t.tc;
    let wei = t.tm * t.tn * shape.kernel_h() * shape.kernel_w();
    (ifm + ofm + wei) * WORD_BYTES
}

/// Standalone cycle count of a layer under tiling `t` (the \[13\] roofline
/// compute term): tasks × per-task effective latency.
fn standalone_cycles(shape: &ConvShape, t: &Tiling, bw: f64) -> u64 {
    let tasks = (shape.out_channels().div_ceil(t.tm)
        * shape.in_channels().div_ceil(t.tn)
        * shape.out_rows().div_ceil(t.tr)
        * shape.out_cols().div_ceil(t.tc)) as u64;
    let compute = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
    let transfer = (transfer_bytes_per_task(shape, t) as f64 / bw).ceil() as u64;
    tasks * compute.max(transfer)
}

/// Enumerates the feasible tilings of one layer under explicit budgets and
/// returns the best `top_n`, sorted by standalone cycle count (ties broken
/// towards smaller per-task latency, then more DSPs).
///
/// This exposes FNAS-Design's inner search for design-space exploration:
/// the first entry is exactly what
/// [`PipelineDesign::generate`](super::PipelineDesign::generate) would pick
/// for the same budgets.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::explore_tilings;
/// use fnas_fpga::layer::ConvShape;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let shape = ConvShape::square(8, 16, 16, 3)?;
/// let candidates = explore_tilings(&shape, 64, 64 * 1024, 8.0, 5);
/// assert!(!candidates.is_empty());
/// assert!(candidates[0].1 <= candidates.last().expect("non-empty").1);
/// # Ok(())
/// # }
/// ```
pub fn explore_tilings(
    shape: &ConvShape,
    dsp_budget: usize,
    bram_budget: usize,
    bandwidth_bytes_per_cycle: f64,
    top_n: usize,
) -> Vec<(Tiling, Cycles)> {
    let mut candidates: Vec<(Tiling, u64)> = Vec::new();
    let m = shape.out_channels();
    let n = shape.in_channels();
    for tm in 1..=m.min(dsp_budget) {
        let tn_cap = n.min(dsp_budget / tm);
        for tn in 1..=tn_cap {
            let Some((tr0, tc0)) = fit_spatial(shape, tm, tn, bram_budget) else {
                continue;
            };
            for (tr, tc) in spatial_candidates(tr0, tc0) {
                let t = Tiling::new(tm, tn, tr, tc);
                if bram_usage(shape, &t) > bram_budget {
                    continue;
                }
                candidates.push((t, standalone_cycles(shape, &t, bandwidth_bytes_per_cycle)));
            }
        }
    }
    candidates.sort_by_key(|&(t, cycles)| {
        let et = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
        (
            cycles,
            et,
            std::cmp::Reverse(t.dsp_slices()),
            std::cmp::Reverse(t.tm),
        )
    });
    candidates.dedup_by_key(|&mut (t, _)| t);
    candidates
        .into_iter()
        .take(top_n)
        .map(|(t, c)| (t, Cycles::new(c)))
        .collect()
}

/// Chooses `⟨Tm, Tn, Tr, Tc⟩` minimising the standalone cycle count.
pub(super) fn choose_tiling(
    shape: &ConvShape,
    dsp_budget: usize,
    bram_budget: usize,
    bw: f64,
) -> Result<Tiling> {
    let m = shape.out_channels();
    let n = shape.in_channels();
    let mut best: Option<(u64, Tiling)> = None;
    for tm in 1..=m.min(dsp_budget) {
        let tn_cap = n.min(dsp_budget / tm);
        if tn_cap == 0 {
            continue;
        }
        for tn in 1..=tn_cap {
            let Some((tr0, tc0)) = fit_spatial(shape, tm, tn, bram_budget) else {
                continue;
            };
            // Refinement: whole-plane tiles minimise ceil-rounding but
            // serialise the pipeline (a consumer waits for full-plane OFM
            // tiles). Among spatial tilings with the same standalone cycle
            // count, smaller tiles give smaller per-task latency and hence
            // smaller inter-layer start deltas (Eqs. 3/4), so prefer them.
            for (tr, tc) in spatial_candidates(tr0, tc0) {
                let t = Tiling::new(tm, tn, tr, tc);
                if bram_usage(shape, &t) > bram_budget {
                    continue;
                }
                let cycles = standalone_cycles(shape, &t, bw);
                let et = (shape.kernel_h() * shape.kernel_w() * t.tr * t.tc) as u64;
                let better = match &best {
                    None => true,
                    Some((c, bt)) => {
                        let bet = (shape.kernel_h() * shape.kernel_w() * bt.tr * bt.tc) as u64;
                        cycles < *c
                            || (cycles == *c && et < bet)
                            || (cycles == *c && et == bet && t.dsp_slices() > bt.dsp_slices())
                            || (cycles == *c
                                && et == bet
                                && t.dsp_slices() == bt.dsp_slices()
                                && t.tm > bt.tm)
                    }
                };
                if better {
                    best = Some((cycles, t));
                }
            }
        }
    }
    best.map(|(_, t)| t)
        .ok_or(FpgaError::InsufficientResources {
            resource: "BRAM bytes",
            needed: bram_usage(shape, &Tiling::new(1, 1, 1, 1)) as u64,
            available: bram_budget as u64,
        })
}

/// Spatial-tiling refinement candidates derived from the BRAM-maximal
/// `(tr0, tc0)`: the same extents at 1×, ½× and ¼× on each axis.
fn spatial_candidates(tr0: usize, tc0: usize) -> Vec<(usize, usize)> {
    let steps = |x: usize| {
        let mut v = vec![x];
        if x >= 2 {
            v.push(x.div_ceil(2));
        }
        if x >= 4 {
            v.push(x.div_ceil(4));
        }
        v
    };
    let mut out = Vec::new();
    for &tr in &steps(tr0) {
        for &tc in &steps(tc0) {
            out.push((tr, tc));
        }
    }
    out
}

/// Largest `(Tr, Tc)` whose buffers fit `bram_budget`, shrinking the larger
/// extent first; `None` if not even `(1, 1)` fits.
fn fit_spatial(
    shape: &ConvShape,
    tm: usize,
    tn: usize,
    bram_budget: usize,
) -> Option<(usize, usize)> {
    let (mut tr, mut tc) = (shape.out_rows(), shape.out_cols());
    loop {
        let t = Tiling::new(tm, tn, tr, tc);
        if bram_usage(shape, &t) <= bram_budget {
            return Some((tr, tc));
        }
        if tr == 1 && tc == 1 {
            return None;
        }
        if tr >= tc {
            tr = (tr / 2).max(1);
        } else {
            tc = (tc / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_tilings_is_sorted_and_budgeted() {
        let shape = ConvShape::square(16, 32, 16, 3).unwrap();
        let candidates = explore_tilings(&shape, 100, 32 * 1024, 8.0, 10);
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= 10);
        for pair in candidates.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        for (t, _) in &candidates {
            assert!(t.dsp_slices() <= 100);
            assert!(bram_usage(&shape, t) <= 32 * 1024);
            assert!(t.tm <= 32 && t.tn <= 16);
        }
    }

    #[test]
    fn explore_tilings_best_matches_choose_tiling() {
        let shape = ConvShape::square(9, 18, 28, 5).unwrap();
        let best = choose_tiling(&shape, 55, 64 * 1024, 10.0).unwrap();
        let explored = explore_tilings(&shape, 55, 64 * 1024, 10.0, 1);
        assert_eq!(explored[0].0, best);
    }

    #[test]
    fn explore_tilings_empty_when_nothing_fits() {
        let shape = ConvShape::square(3, 8, 16, 3).unwrap();
        assert!(explore_tilings(&shape, 8, 4, 8.0, 5).is_empty());
    }
}
