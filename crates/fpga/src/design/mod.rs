//! **FNAS-Design** (component ➀): tiling-parameter selection.
//!
//! Each layer of the child network is mapped to a dedicated processing
//! element (PE); the PEs run as a pipeline on one FPGA or across a cluster
//! (§3.3 of the paper). This module decides, for every layer:
//!
//! 1. its **DSP budget** — load-balanced proportionally to the layer's MAC
//!    count, so pipeline stages have similar throughput;
//! 2. its **device** — consecutive layers are packed onto cluster devices by
//!    balancing MAC load;
//! 3. its **tiling parameters** `⟨Tm, Tn, Tr, Tc⟩` — chosen to minimise the
//!    layer's standalone cycle count subject to `Tm·Tn ≤ DSP budget` and the
//!    tile buffers fitting the per-layer BRAM budget, following the roofline
//!    methodology of Zhang et al. (FPGA'15) \[13\].
//!
//! After per-layer selection, the spatial grid is harmonised so that every
//! layer has the same number of row/col tiles — the paper's task graph maps
//! spatial tile `m` of one layer to spatial tile `m` of the next, which is
//! well-defined only on a common grid.
//!
//! The module is split by concern: `tiling` holds the per-layer roofline
//! search (buffer sizing, candidate enumeration), `placement` holds the
//! cross-layer decisions (device packing, DSP budgeting, grid
//! harmonisation). Both are driven by [`PipelineDesign::generate_on_cluster`],
//! which the pass pipeline wraps as its `design` pass.

mod placement;
mod tiling;

pub use tiling::explore_tilings;

use crate::device::{FpgaCluster, FpgaDevice};
use crate::layer::{ConvShape, Network};
use crate::{Cycles, Result};

use placement::{assign_devices, dsp_budgets, harmonize_spatial_grid, make_layer_design};
use tiling::{bram_usage, choose_tiling};

/// Bytes per activation/weight word (16-bit fixed point, as in \[13\]).
pub const WORD_BYTES: usize = 2;

/// Tiling parameters `⟨Tm, Tn, Tr, Tc⟩` for one layer (§3.3).
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::Tiling;
///
/// let t = Tiling::new(4, 2, 8, 8);
/// assert_eq!(t.dsp_slices(), 8); // a PE of Tm×Tn DSPs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling {
    /// Output-channel tile extent `Tm`.
    pub tm: usize,
    /// Input-channel tile extent `Tn`.
    pub tn: usize,
    /// Output-row tile extent `Tr`.
    pub tr: usize,
    /// Output-column tile extent `Tc`.
    pub tc: usize,
}

impl Tiling {
    /// Creates a tiling; extents are clamped to at least 1.
    pub fn new(tm: usize, tn: usize, tr: usize, tc: usize) -> Self {
        Tiling {
            tm: tm.max(1),
            tn: tn.max(1),
            tr: tr.max(1),
            tc: tc.max(1),
        }
    }

    /// DSP slices a PE with this tiling occupies: `Tm × Tn` (one 16-bit MAC
    /// each, \[13\]).
    pub fn dsp_slices(&self) -> usize {
        self.tm * self.tn
    }
}

/// The complete design of one layer's PE.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesign {
    shape: ConvShape,
    tiling: Tiling,
    device: usize,
    compute_cycles_per_task: u64,
    transfer_cycles_per_task: u64,
}

impl LayerDesign {
    /// The layer's workload shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The chosen tiling.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Index of the cluster device hosting this PE.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Number of input-channel tiles `|CHⁱᶠᵐ| = ⌈N / Tn⌉`.
    pub fn ch_ifm_tiles(&self) -> usize {
        self.shape.in_channels().div_ceil(self.tiling.tn)
    }

    /// Number of output-channel tiles `|CHᵒᶠᵐ| = ⌈M / Tm⌉`.
    pub fn ch_ofm_tiles(&self) -> usize {
        self.shape.out_channels().div_ceil(self.tiling.tm)
    }

    /// Number of row/col tiles `|RC| = ⌈R / Tr⌉ · ⌈C / Tc⌉`.
    pub fn rc_tiles(&self) -> usize {
        self.shape.out_rows().div_ceil(self.tiling.tr)
            * self.shape.out_cols().div_ceil(self.tiling.tc)
    }

    /// Per-task compute time `ET = Kh·Kw·Tr·Tc` cycles (§3.3).
    pub fn compute_cycles_per_task(&self) -> Cycles {
        Cycles::new(self.compute_cycles_per_task)
    }

    /// Per-task external-memory transfer time (IFM tile + weights + OFM
    /// tile over the device bandwidth), assuming double buffering.
    pub fn transfer_cycles_per_task(&self) -> Cycles {
        Cycles::new(self.transfer_cycles_per_task)
    }

    /// Effective per-task latency: compute and transfer overlap under double
    /// buffering, so the slower of the two dominates.
    pub fn task_cycles(&self) -> Cycles {
        Cycles::new(
            self.compute_cycles_per_task
                .max(self.transfer_cycles_per_task),
        )
    }

    /// Total number of tasks on this PE:
    /// `|CHⁱᶠᵐ| × |CHᵒᶠᵐ| × |RC|` (Fig. 3(e)).
    pub fn task_count(&self) -> usize {
        self.ch_ifm_tiles() * self.ch_ofm_tiles() * self.rc_tiles()
    }

    /// Bytes of one OFM tile (for inter-device transfer costing).
    pub fn ofm_tile_bytes(&self) -> usize {
        self.tiling.tm * self.tiling.tr * self.tiling.tc * WORD_BYTES
    }

    /// On-chip buffer footprint of this PE in bytes (double-buffered IFM,
    /// OFM and weight tiles).
    pub fn bram_bytes(&self) -> usize {
        bram_usage(&self.shape, &self.tiling)
    }
}

/// A full pipeline design: one PE per layer, mapped onto a cluster.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 16, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// assert_eq!(design.layers().len(), 1);
/// assert!(design.layers()[0].tiling().dsp_slices() <= 220);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineDesign {
    layers: Vec<LayerDesign>,
    cluster: FpgaCluster,
}

impl PipelineDesign {
    /// Designs the pipeline for a single FPGA.
    ///
    /// # Errors
    ///
    /// See [`PipelineDesign::generate_on_cluster`].
    pub fn generate(network: &Network, device: &FpgaDevice) -> Result<Self> {
        PipelineDesign::generate_on_cluster(network, &FpgaCluster::single(device.clone()))
    }

    /// Designs the pipeline across a cluster: layers are packed onto devices
    /// by MAC load, then each layer's tiling is chosen within its device
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InsufficientResources`](crate::FpgaError::InsufficientResources)
    /// when there are fewer DSP slices than layers on some device, or when
    /// even a 1×1×1×1 tile does not fit the per-layer BRAM budget.
    pub fn generate_on_cluster(network: &Network, cluster: &FpgaCluster) -> Result<Self> {
        let assignment = assign_devices(network, cluster);
        let mut layers = Vec::with_capacity(network.len());
        for (dev_idx, device) in cluster.devices().iter().enumerate() {
            let members: Vec<usize> = (0..network.len())
                .filter(|&i| assignment[i] == dev_idx)
                .collect();
            if members.is_empty() {
                continue;
            }
            let budgets = dsp_budgets(network, &members, device.dsp_slices())?;
            let bram_each = device.bram_bytes() / members.len();
            // The external memory bus is shared by every PE on the device,
            // so each layer sees its fair fraction of the bandwidth.
            let bw_each = device.bandwidth_bytes_per_cycle() / members.len() as f64;
            for (&layer_idx, &dsp) in members.iter().zip(&budgets) {
                let shape = network.layers()[layer_idx];
                let tiling = choose_tiling(&shape, dsp, bram_each, bw_each)?;
                layers.push((
                    layer_idx,
                    make_layer_design(shape, tiling, dev_idx, device, bw_each),
                ));
            }
        }
        layers.sort_by_key(|(i, _)| *i);
        let mut layers: Vec<LayerDesign> = layers.into_iter().map(|(_, d)| d).collect();
        harmonize_spatial_grid(&mut layers, cluster);
        Ok(PipelineDesign {
            layers,
            cluster: cluster.clone(),
        })
    }

    /// Per-layer designs, in pipeline order.
    pub fn layers(&self) -> &[LayerDesign] {
        &self.layers
    }

    /// The cluster this design targets.
    pub fn cluster(&self) -> &FpgaCluster {
        &self.cluster
    }

    /// Pipeline clock in MHz (slowest device).
    pub fn clock_mhz(&self) -> f64 {
        self.cluster.pipeline_clock_mhz()
    }

    /// Cycles to ship one OFM tile of layer `i` to layer `i+1`, zero when
    /// both PEs share a device.
    pub fn boundary_transfer_cycles(&self, producer: usize) -> Cycles {
        let consumer = producer + 1;
        if consumer >= self.layers.len()
            || self.layers[producer].device() == self.layers[consumer].device()
        {
            return Cycles::new(0);
        }
        let bytes = self.layers[producer].ofm_tile_bytes() as f64;
        Cycles::new((bytes / self.cluster.link_bytes_per_cycle()).ceil() as u64)
    }
}

/// Per-layer entry of a [`UtilizationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerUtilization {
    /// Layer index in the pipeline.
    pub layer: usize,
    /// Hosting device index.
    pub device: usize,
    /// DSP slices the PE occupies (`Tm × Tn`).
    pub dsp_slices: usize,
    /// Tile-buffer bytes the PE occupies.
    pub bram_bytes: usize,
    /// Fraction of the PE's raw MAC throughput the layer actually uses
    /// (losses come from `⌈·⌉` tile rounding and transfer-bound tasks).
    pub mac_efficiency: f64,
    /// `true` when the per-task latency is set by compute rather than by
    /// the memory bus.
    pub compute_bound: bool,
}

/// Resource accounting for a whole pipeline design.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 16, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let u = design.utilization();
/// assert!(u.dsp_used <= u.dsp_available);
/// assert!(u.per_layer[0].mac_efficiency <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// One entry per layer, in pipeline order.
    pub per_layer: Vec<LayerUtilization>,
    /// DSP slices occupied across the cluster.
    pub dsp_used: usize,
    /// DSP slices the cluster offers.
    pub dsp_available: usize,
    /// Tile-buffer bytes occupied across the cluster.
    pub bram_used: usize,
    /// BRAM bytes the cluster offers.
    pub bram_available: usize,
}

impl PipelineDesign {
    /// Computes the resource accounting of this design.
    pub fn utilization(&self) -> UtilizationReport {
        let per_layer: Vec<LayerUtilization> = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let macs = l.shape().macs().get() as f64;
                let pe_cycles = (l.task_count() as u64 * l.task_cycles().get()) as f64;
                let dsp = l.tiling().dsp_slices();
                LayerUtilization {
                    layer: i,
                    device: l.device(),
                    dsp_slices: dsp,
                    bram_bytes: l.bram_bytes(),
                    mac_efficiency: if pe_cycles > 0.0 {
                        (macs / (pe_cycles * dsp as f64)).min(1.0)
                    } else {
                        0.0
                    },
                    compute_bound: l.compute_cycles_per_task() >= l.transfer_cycles_per_task(),
                }
            })
            .collect();
        UtilizationReport {
            dsp_used: per_layer.iter().map(|l| l.dsp_slices).sum(),
            dsp_available: self.cluster.total_dsp_slices(),
            bram_used: per_layer.iter().map(|l| l.bram_bytes).sum(),
            bram_available: self.cluster.total_bram_bytes(),
            per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FpgaError;

    pub(super) fn net4(filters: [usize; 4]) -> Network {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        Network::new(layers).unwrap()
    }

    #[test]
    fn design_respects_dsp_budget() {
        let net = net4([64, 64, 128, 64]);
        let dev = FpgaDevice::pynq();
        let d = PipelineDesign::generate(&net, &dev).unwrap();
        let used: usize = d.layers().iter().map(|l| l.tiling().dsp_slices()).sum();
        assert!(
            used <= dev.dsp_slices(),
            "used {used} DSPs of {}",
            dev.dsp_slices()
        );
        assert_eq!(d.layers().len(), 4);
    }

    #[test]
    fn design_respects_bram_budget() {
        let net = net4([64, 64, 64, 64]);
        let dev = FpgaDevice::xc7a50t();
        let d = PipelineDesign::generate(&net, &dev).unwrap();
        let per_layer = dev.bram_bytes() / 4;
        for l in d.layers() {
            assert!(
                l.bram_bytes() <= per_layer,
                "layer buffers {} exceed budget {per_layer}",
                l.bram_bytes()
            );
        }
    }

    #[test]
    fn bigger_device_is_never_slower() {
        let net = net4([64, 128, 128, 64]);
        let small = PipelineDesign::generate(&net, &FpgaDevice::xc7a50t()).unwrap();
        let large = PipelineDesign::generate(&net, &FpgaDevice::zu9eg()).unwrap();
        let cycles = |d: &PipelineDesign| -> u64 {
            d.layers()
                .iter()
                .map(|l| l.task_count() as u64 * l.task_cycles().get())
                .sum()
        };
        assert!(cycles(&large) <= cycles(&small));
    }

    #[test]
    fn tilings_never_exceed_layer_extents() {
        let net = net4([9, 18, 36, 9]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::zu9eg()).unwrap();
        for l in d.layers() {
            assert!(l.tiling().tm <= l.shape().out_channels());
            assert!(l.tiling().tn <= l.shape().in_channels());
            assert!(l.tiling().tr <= l.shape().out_rows());
            assert!(l.tiling().tc <= l.shape().out_cols());
        }
    }

    #[test]
    fn spatial_grid_is_harmonised() {
        let net = net4([64, 64, 64, 64]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::xc7a50t()).unwrap();
        let grids: Vec<usize> = d.layers().iter().map(LayerDesign::rc_tiles).collect();
        assert!(grids.windows(2).all(|w| w[0] == w[1]), "grids {grids:?}");
    }

    #[test]
    fn too_many_layers_for_dsps_errors() {
        let tiny = FpgaDevice::new("tiny", 2, 1 << 20, 4.0, 100.0).unwrap();
        let net = net4([4, 4, 4, 4]);
        let err = PipelineDesign::generate(&net, &tiny).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::InsufficientResources {
                resource: "DSP slices",
                ..
            }
        ));
    }

    #[test]
    fn microscopic_bram_errors() {
        let dev = FpgaDevice::new("nobram", 64, 8, 4.0, 100.0).unwrap();
        let net = Network::new(vec![ConvShape::square(3, 8, 16, 3).unwrap()]).unwrap();
        let err = PipelineDesign::generate(&net, &dev).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::InsufficientResources {
                resource: "BRAM bytes",
                ..
            }
        ));
    }

    #[test]
    fn cluster_design_spreads_layers() {
        let net = net4([64, 64, 64, 64]);
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 4.0).unwrap();
        let d = PipelineDesign::generate_on_cluster(&net, &cluster).unwrap();
        let devices: Vec<usize> = d.layers().iter().map(LayerDesign::device).collect();
        assert!(devices.contains(&0));
        assert!(devices.contains(&1));
        // Assignment is monotone (consecutive layers).
        assert!(devices.windows(2).all(|w| w[0] <= w[1]));
        // Crossing a device boundary costs cycles; staying does not.
        let boundary = devices.windows(2).position(|w| w[0] != w[1]).unwrap();
        assert!(d.boundary_transfer_cycles(boundary).get() > 0);
        if boundary > 0 {
            assert_eq!(d.boundary_transfer_cycles(boundary - 1).get(), 0);
        }
    }

    #[test]
    fn utilization_accounts_every_layer() {
        let net = net4([64, 64, 128, 64]);
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let u = d.utilization();
        assert_eq!(u.per_layer.len(), 4);
        assert!(u.dsp_used <= u.dsp_available);
        assert!(u.bram_used <= u.bram_available);
        for l in &u.per_layer {
            assert!(l.mac_efficiency > 0.0 && l.mac_efficiency <= 1.0);
            assert!(l.dsp_slices > 0);
        }
        // Load balancing should keep the design from starving any layer:
        // at least half the device's DSPs are in use for this workload.
        assert!(
            u.dsp_used * 2 >= u.dsp_available,
            "{} of {}",
            u.dsp_used,
            u.dsp_available
        );
    }

    #[test]
    fn task_cycles_is_max_of_compute_and_transfer() {
        let net = Network::new(vec![ConvShape::square(3, 8, 16, 3).unwrap()]).unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let l = &d.layers()[0];
        assert_eq!(
            l.task_cycles().get(),
            l.compute_cycles_per_task()
                .get()
                .max(l.transfer_cycles_per_task().get())
        );
    }
}
