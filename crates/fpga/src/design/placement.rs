//! Cross-layer placement decisions: device packing, DSP budgeting and the
//! spatial-grid harmonisation that makes the task graph well-defined.

use crate::device::{FpgaCluster, FpgaDevice};
use crate::layer::{ConvShape, Network};
use crate::{FpgaError, Result};

use super::tiling::{bram_usage, transfer_bytes_per_task};
use super::{LayerDesign, Tiling};

pub(super) fn make_layer_design(
    shape: ConvShape,
    tiling: Tiling,
    device: usize,
    dev: &FpgaDevice,
    bw_each: f64,
) -> LayerDesign {
    let _ = dev;
    let compute = (shape.kernel_h() * shape.kernel_w() * tiling.tr * tiling.tc) as u64;
    let transfer = (transfer_bytes_per_task(&shape, &tiling) as f64 / bw_each).ceil() as u64;
    LayerDesign {
        shape,
        tiling,
        device,
        compute_cycles_per_task: compute,
        transfer_cycles_per_task: transfer,
    }
}

/// Packs consecutive layers onto devices balancing MAC load.
pub(super) fn assign_devices(network: &Network, cluster: &FpgaCluster) -> Vec<usize> {
    let n_dev = cluster.len();
    if n_dev == 1 {
        return vec![0; network.len()];
    }
    let total: u64 = network.total_macs().get();
    let target = total as f64 / n_dev as f64;
    let mut assignment = vec![0usize; network.len()];
    let mut dev = 0usize;
    let mut acc = 0u64;
    for (i, layer) in network.layers().iter().enumerate() {
        let w = layer.macs().get();
        // Move to the next device when this one is "full", but never strand
        // trailing layers: keep at least one layer per remaining device only
        // if layers remain to fill them.
        if dev + 1 < n_dev && acc > 0 && (acc as f64 + w as f64 / 2.0) > target {
            dev += 1;
            acc = 0;
        }
        assignment[i] = dev;
        acc += w;
    }
    assignment
}

/// Splits `total_dsp` over the given layers proportionally to MACs.
pub(super) fn dsp_budgets(
    network: &Network,
    members: &[usize],
    total_dsp: usize,
) -> Result<Vec<usize>> {
    if total_dsp < members.len() {
        return Err(FpgaError::InsufficientResources {
            resource: "DSP slices",
            needed: members.len() as u64,
            available: total_dsp as u64,
        });
    }
    let weights: Vec<u64> = members
        .iter()
        .map(|&i| network.layers()[i].macs().get())
        .collect();
    let total_w: u64 = weights.iter().sum();
    let mut budgets: Vec<usize> = weights
        .iter()
        .map(|&w| (((total_dsp as u128 * w as u128) / total_w.max(1) as u128) as usize).max(1))
        .collect();
    // Trim overshoot caused by the max(1) floor, largest budgets first.
    let mut sum: usize = budgets.iter().sum();
    while sum > total_dsp {
        let imax = (0..budgets.len())
            .max_by_key(|&i| budgets[i])
            .expect("members is non-empty");
        if budgets[imax] <= 1 {
            break;
        }
        budgets[imax] -= 1;
        sum -= 1;
    }
    Ok(budgets)
}

/// Forces a common spatial grid across the pipeline so that spatial tile `m`
/// of layer `i+1` corresponds to spatial tile `m` of layer `i` (Fig. 3).
///
/// Layers may have slightly different spatial extents (even kernels shrink
/// the plane by one), and not every tile count is achievable by a uniform
/// tile extent (`⌈25/tr⌉ = 6` has no solution), so the harmoniser picks the
/// **largest tile count every layer can realise exactly**, backing off
/// further if a layer's buffers would no longer fit its BRAM budget.
pub(super) fn harmonize_spatial_grid(layers: &mut [LayerDesign], cluster: &FpgaCluster) {
    let mut per_device = vec![0usize; cluster.len()];
    for layer in layers.iter() {
        per_device[layer.device] += 1;
    }
    let bram_budget = |layer: &LayerDesign| {
        cluster.devices()[layer.device].bram_bytes() / per_device[layer.device].max(1)
    };

    // A grid count `g` is realisable for extent `e` iff ⌈e/⌈e/g⌉⌉ = g.
    let feasible = |e: usize, g: usize| e.div_ceil(e.div_ceil(g)) == g;
    let max_grid = |extents: &[usize], target: usize| {
        (1..=target)
            .rev()
            .find(|&g| extents.iter().all(|&e| g <= e && feasible(e, g)))
            .unwrap_or(1)
    };

    let rows: Vec<usize> = layers.iter().map(|l| l.shape.out_rows()).collect();
    let cols: Vec<usize> = layers.iter().map(|l| l.shape.out_cols()).collect();
    let target_r = layers
        .iter()
        .map(|l| l.shape.out_rows().div_ceil(l.tiling.tr))
        .max()
        .unwrap_or(1);
    let target_c = layers
        .iter()
        .map(|l| l.shape.out_cols().div_ceil(l.tiling.tc))
        .max()
        .unwrap_or(1);

    let mut grid_r = max_grid(&rows, target_r);
    let mut grid_c = max_grid(&cols, target_c);
    loop {
        // Larger tiles (smaller grids) can overflow a layer's BRAM budget;
        // back off the finer axis until everything fits.
        let overflow = layers.iter().any(|layer| {
            let tr = layer.shape.out_rows().div_ceil(grid_r);
            let tc = layer.shape.out_cols().div_ceil(grid_c);
            let t = Tiling::new(layer.tiling.tm, layer.tiling.tn, tr, tc);
            bram_usage(&layer.shape, &t) > bram_budget(layer)
        });
        if !overflow || (grid_r == 1 && grid_c == 1) {
            break;
        }
        // Shrinking tiles means *increasing* the grid count; move towards
        // the per-layer extents, which always fit (they were chosen under
        // the same budgets).
        if grid_r <= grid_c {
            let next = max_grid(
                &rows,
                grid_r
                    .saturating_mul(2)
                    .min(rows.iter().copied().min().unwrap_or(1)),
            );
            if next == grid_r {
                break;
            }
            grid_r = next;
        } else {
            let next = max_grid(
                &cols,
                grid_c
                    .saturating_mul(2)
                    .min(cols.iter().copied().min().unwrap_or(1)),
            );
            if next == grid_c {
                break;
            }
            grid_c = next;
        }
    }

    for layer in layers.iter_mut() {
        let tr = layer.shape.out_rows().div_ceil(grid_r);
        let tc = layer.shape.out_cols().div_ceil(grid_c);
        let tiling = Tiling::new(layer.tiling.tm, layer.tiling.tn, tr, tc);
        let dev = &cluster.devices()[layer.device];
        let bw_each = dev.bandwidth_bytes_per_cycle() / per_device[layer.device].max(1) as f64;
        *layer = make_layer_design(layer.shape, tiling, layer.device, dev, bw_each);
    }
    debug_assert!(
        layers
            .windows(2)
            .all(|w| w[0].rc_tiles() == w[1].rc_tiles()),
        "harmonisation must equalise spatial grids"
    );
}

#[cfg(test)]
mod tests {
    use super::super::tests::net4;
    use super::*;

    #[test]
    fn dsp_budgets_are_proportional_to_macs() {
        // Two layers with MAC ratio 1:3 should get budgets roughly 1:3.
        let l0 = ConvShape::square(4, 4, 16, 3).unwrap();
        let l1 = ConvShape::new(4, 12, 16, 16, 3, 3).unwrap();
        let net = Network::new(vec![l0, l1]).unwrap();
        let budgets = dsp_budgets(&net, &[0, 1], 100).unwrap();
        assert!(budgets[1] > budgets[0] * 2, "budgets {budgets:?}");
        assert!(budgets.iter().sum::<usize>() <= 100);
    }

    #[test]
    fn device_assignment_is_monotone_and_total() {
        let net = net4([64, 64, 64, 64]);
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 4.0).unwrap();
        let assignment = assign_devices(&net, &cluster);
        assert_eq!(assignment.len(), 4);
        assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
        assert!(assignment.iter().all(|&d| d < cluster.len()));
    }
}
