//! The hardware-oracle pass pipeline.
//!
//! The oracle used to be staged ad hoc — `design` → `taskgraph` → `sched`
//! → `sim`, stitched together inside `artifacts.rs`. This module makes the
//! staging explicit: a [`Pass`] lowers a [`PipelineIr`] one step, a
//! [`PassManager`] runs an ordered list of passes, and the **canonical
//! pipeline fingerprint** — the order-sensitive fold of every standard
//! pass's fingerprint — is folded into the persistent store's cache key so
//! content addressing sees pipeline changes instead of silently serving
//! records computed by an older lowering.
//!
//! The standard pipeline is
//! `design → taskgraph → partition → schedule → sim`:
//!
//! | pass        | consumes            | produces                 |
//! |-------------|---------------------|--------------------------|
//! | `design`    | network + cluster   | [`PipelineDesign`]       |
//! | `taskgraph` | design              | [`TileTaskGraph`]        |
//! | `partition` | graph               | [`PartitionedGraph`]     |
//! | `schedule`  | graph               | [`Schedule`]             |
//! | `sim`       | design + graph + schedule (+ partitions) | [`SimReport`] |
//!
//! Pass fingerprints digest the pass's *semantics version*: anything that
//! can change the bytes of a pass's output must change its fingerprint.
//! Two deliberate exclusions: the partition **count** (any split produces
//! byte-identical simulation results, so it is a pure performance knob)
//! and the sim **execution mode** (the partitioned backend is pinned
//! byte-identical to the single-threaded one).

pub mod partition;

use std::sync::Arc;
use std::time::Instant;

use fnas_exec::Executor;

use crate::design::PipelineDesign;
use crate::device::FpgaCluster;
use crate::layer::Network;
use crate::sched::{FnasScheduler, Schedule};
use crate::sim::parallel::{simulate_design_partitioned, PartitionStats};
use crate::sim::{simulate_design, SimReport};
use crate::taskgraph::TileTaskGraph;
use crate::{FpgaError, Result};

use partition::PartitionedGraph;

/// Default region count for the standard pipeline's `partition` pass
/// (clamped to the layer count at build time).
pub const DEFAULT_PARTITIONS: usize = 4;

/// Wall time of one executed pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Wall nanoseconds the pass took.
    pub nanos: u64,
}

/// The intermediate representation threaded through the pipeline: every
/// lowering product as an optional slot, filled as passes run.
#[derive(Debug, Clone, Default)]
pub struct PipelineIr {
    network: Option<Network>,
    cluster: Option<FpgaCluster>,
    design: Option<Arc<PipelineDesign>>,
    graph: Option<Arc<TileTaskGraph>>,
    partitions: Option<Arc<PartitionedGraph>>,
    schedule: Option<Arc<Schedule>>,
    sim: Option<SimReport>,
    partition_stats: Option<PartitionStats>,
    timings: Vec<PassTiming>,
}

impl PipelineIr {
    /// An IR seeded with the architecture and target cluster — the input of
    /// the standard pipeline.
    pub fn for_network(network: Network, cluster: FpgaCluster) -> Self {
        PipelineIr {
            network: Some(network),
            cluster: Some(cluster),
            ..PipelineIr::default()
        }
    }

    /// An IR seeded with an already-generated design (the `design` pass
    /// becomes a no-op); used when the caller owns design generation.
    pub fn from_design(design: Arc<PipelineDesign>) -> Self {
        PipelineIr {
            cluster: Some(design.cluster().clone()),
            design: Some(design),
            ..PipelineIr::default()
        }
    }

    /// The design slot, if a design pass has run (or seeded it).
    pub fn design(&self) -> Option<&Arc<PipelineDesign>> {
        self.design.as_ref()
    }

    /// The task-graph slot.
    pub fn graph(&self) -> Option<&Arc<TileTaskGraph>> {
        self.graph.as_ref()
    }

    /// The partition slot.
    pub fn partitions(&self) -> Option<&Arc<PartitionedGraph>> {
        self.partitions.as_ref()
    }

    /// The schedule slot.
    pub fn schedule(&self) -> Option<&Arc<Schedule>> {
        self.schedule.as_ref()
    }

    /// The simulation-report slot.
    pub fn sim(&self) -> Option<&SimReport> {
        self.sim.as_ref()
    }

    /// Partition statistics from a partitioned `sim` pass, if one ran.
    pub fn partition_stats(&self) -> Option<&PartitionStats> {
        self.partition_stats.as_ref()
    }

    /// Wall time of every pass run so far, in execution order.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// One-line summary of the filled slots (for the debug dump).
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if let Some(d) = &self.design {
            parts.push(format!(
                "design[{} layers, {} DSP]",
                d.layers().len(),
                d.utilization().dsp_used
            ));
        }
        if let Some(g) = &self.graph {
            parts.push(format!(
                "graph[{} tasks/{} layers]",
                g.total_tasks(),
                g.num_layers()
            ));
        }
        if let Some(p) = &self.partitions {
            parts.push(format!(
                "partitions[{} regions, {} cross tiles]",
                p.num_regions(),
                p.total_cross_traffic()
            ));
        }
        if let Some(s) = &self.schedule {
            parts.push(format!("schedule[{} PEs, {}]", s.num_pes(), s.name()));
        }
        if let Some(r) = &self.sim {
            parts.push(format!("sim[makespan {}]", r.makespan));
        }
        if parts.is_empty() {
            parts.push("empty".to_string());
        }
        parts.join(" ")
    }

    fn missing(pass: &'static str, slot: &'static str) -> FpgaError {
        FpgaError::InvalidConfig {
            what: format!("pass `{pass}` needs the `{slot}` slot filled"),
        }
    }
}

/// One lowering step of the pipeline.
pub trait Pass: Send + Sync {
    /// Stable pass name (also the telemetry label).
    fn name(&self) -> &'static str;

    /// Stable digest of the pass's output-affecting semantics. Changing
    /// anything that can change the pass's output bytes must change this
    /// value, so the store's content addressing retires stale records.
    fn fingerprint(&self) -> u64;

    /// Lowers `ir` in place.
    ///
    /// # Errors
    ///
    /// [`FpgaError::InvalidConfig`] when a required input slot is missing;
    /// otherwise whatever the underlying lowering reports.
    fn run(&self, ir: &mut PipelineIr) -> Result<()>;
}

/// Generates the [`PipelineDesign`] from the network and cluster; a no-op
/// when the IR was seeded from an existing design.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignPass;

impl Pass for DesignPass {
    fn name(&self) -> &'static str {
        "design"
    }

    fn fingerprint(&self) -> u64 {
        fnv64(b"design/v1:roofline-tiling:mac-balanced-placement:harmonized-grid")
    }

    fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        if ir.design.is_some() {
            return Ok(());
        }
        let network = ir
            .network
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("design", "network"))?;
        let cluster = ir
            .cluster
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("design", "cluster"))?;
        ir.design = Some(Arc::new(PipelineDesign::generate_on_cluster(
            network, cluster,
        )?));
        Ok(())
    }
}

/// Lowers the design to the tile task graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphPass;

impl Pass for GraphPass {
    fn name(&self) -> &'static str {
        "taskgraph"
    }

    fn fingerprint(&self) -> u64 {
        fnv64(b"taskgraph/v1:tile-dependency-windows")
    }

    fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        let design = ir
            .design
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("taskgraph", "design"))?;
        ir.graph = Some(Arc::new(TileTaskGraph::from_design(design)?));
        Ok(())
    }
}

/// Splits the task graph into contiguous per-PE regions.
///
/// The region *count* is deliberately excluded from the fingerprint: every
/// split simulates to byte-identical results (pinned by test), so it is a
/// pure performance knob and must not churn the store.
#[derive(Debug, Clone, Copy)]
pub struct PartitionPass {
    /// Requested region count (clamped to the layer count).
    pub partitions: usize,
}

impl Default for PartitionPass {
    fn default() -> Self {
        PartitionPass {
            partitions: DEFAULT_PARTITIONS,
        }
    }
}

impl Pass for PartitionPass {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn fingerprint(&self) -> u64 {
        fnv64(b"partition/v1:contiguous-cycle-balanced-regions")
    }

    fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        let graph = ir
            .graph
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("partition", "graph"))?;
        ir.partitions = Some(Arc::new(PartitionedGraph::build(graph, self.partitions)));
        Ok(())
    }
}

/// Schedules the task graph with the paper's FNAS scheduler defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn fingerprint(&self) -> u64 {
        // Covers the FnasScheduler::new() configuration the pass hard-codes:
        // alternating reuse starting with OFM, ready-queue reordering,
        // channel-first spatial order.
        fnv64(b"schedule/v1:fnas-sched:ofm-first:reorder-on-stall:channel-first")
    }

    fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        let graph = ir
            .graph
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("schedule", "graph"))?;
        ir.schedule = Some(Arc::new(FnasScheduler::new().schedule(graph)));
        Ok(())
    }
}

/// Runs the cycle-level simulator over the scheduled design.
///
/// The execution mode (single-threaded heap vs partitioned parallel) is
/// excluded from the fingerprint: the partitioned backend is pinned
/// byte-identical to the single-threaded one, so the mode cannot change
/// the output bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimPass {
    executor: Option<Executor>,
}

impl SimPass {
    /// The single-threaded event-heap simulator.
    pub fn single_threaded() -> Self {
        SimPass { executor: None }
    }

    /// The partitioned parallel simulator on `executor` threads (requires
    /// the `partition` pass to have run).
    pub fn partitioned(executor: Executor) -> Self {
        SimPass {
            executor: Some(executor),
        }
    }
}

impl Pass for SimPass {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn fingerprint(&self) -> u64 {
        fnv64(b"sim/v1:event-heap:push-order-tiebreak")
    }

    fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        let design = ir
            .design
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("sim", "design"))?;
        let graph = ir
            .graph
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("sim", "graph"))?;
        let schedule = ir
            .schedule
            .as_ref()
            .ok_or_else(|| PipelineIr::missing("sim", "schedule"))?;
        match self.executor {
            None => {
                ir.sim = Some(simulate_design(design, graph, schedule)?);
            }
            Some(executor) => {
                let partitions = ir
                    .partitions
                    .as_ref()
                    .ok_or_else(|| PipelineIr::missing("sim", "partitions"))?;
                let (report, stats) =
                    simulate_design_partitioned(design, graph, schedule, partitions, &executor)?;
                ir.sim = Some(report);
                ir.partition_stats = Some(stats);
            }
        }
        Ok(())
    }
}

/// An ordered list of passes with an order-sensitive combined fingerprint.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// A manager over an explicit pass list.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager { passes }
    }

    /// The standard full pipeline:
    /// `design → taskgraph → partition → schedule → sim`.
    pub fn standard() -> Self {
        PassManager::new(vec![
            Box::new(DesignPass),
            Box::new(GraphPass),
            Box::new(PartitionPass::default()),
            Box::new(SchedulePass),
            Box::new(SimPass::single_threaded()),
        ])
    }

    /// The lazy lowering the staged oracle runs on first schedule demand:
    /// `taskgraph → partition → schedule` (design is seeded, sim is on
    /// demand).
    pub fn lowering(partitions: usize) -> Self {
        PassManager::new(vec![
            Box::new(GraphPass),
            Box::new(PartitionPass { partitions }),
            Box::new(SchedulePass),
        ])
    }

    /// The passes, in execution order.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Runs every pass in order, recording per-pass wall time in the IR.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first pass failure.
    pub fn run(&self, ir: &mut PipelineIr) -> Result<()> {
        for pass in &self.passes {
            let t0 = Instant::now();
            pass.run(ir)?;
            ir.timings.push(PassTiming {
                name: pass.name(),
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }
        Ok(())
    }

    /// Order-sensitive fold of every pass fingerprint: reordering,
    /// inserting, removing or re-versioning any pass changes the value.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = fnv64(b"fnas-pass-pipeline/v1");
        for pass in &self.passes {
            acc = mix64(acc.rotate_left(7) ^ pass.fingerprint());
        }
        acc
    }
}

/// Fingerprint of [`PassManager::standard`] — the value folded into the
/// persistent store's cache keys (`fnas-store` rotates records when it
/// changes).
pub fn canonical_pipeline_fingerprint() -> u64 {
    PassManager::standard().fingerprint()
}

/// 64-bit FNV-1a with a SplitMix64 finaliser; stable across platforms.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h ^ bytes.len() as u64)
}

/// SplitMix64 finaliser.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use crate::layer::ConvShape;

    fn network(filters: &[usize]) -> Network {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        Network::new(layers).unwrap()
    }

    fn pynq_cluster() -> FpgaCluster {
        FpgaCluster::single(FpgaDevice::pynq())
    }

    #[test]
    fn standard_pipeline_fills_every_slot() {
        let mut ir = PipelineIr::for_network(network(&[16, 32, 16]), pynq_cluster());
        PassManager::standard().run(&mut ir).unwrap();
        assert!(ir.design().is_some());
        assert!(ir.graph().is_some());
        assert!(ir.partitions().is_some());
        assert!(ir.schedule().is_some());
        assert!(ir.sim().is_some());
        assert_eq!(ir.timings().len(), 5);
        let names: Vec<&str> = ir.timings().iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec!["design", "taskgraph", "partition", "schedule", "sim"]
        );
        let summary = ir.summary();
        for token in ["design[", "graph[", "partitions[", "schedule[", "sim["] {
            assert!(summary.contains(token), "summary {summary:?}");
        }
    }

    #[test]
    fn pipeline_matches_the_direct_staged_path() {
        let net = network(&[16, 32]);
        let mut ir = PipelineIr::for_network(net.clone(), pynq_cluster());
        PassManager::standard().run(&mut ir).unwrap();

        let design = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let graph = TileTaskGraph::from_design(&design).unwrap();
        let schedule = FnasScheduler::new().schedule(&graph);
        let report = simulate_design(&design, &graph, &schedule).unwrap();

        assert_eq!(**ir.design().unwrap(), design);
        assert_eq!(*ir.schedule().unwrap().as_ref(), schedule);
        assert_eq!(*ir.sim().unwrap(), report);
    }

    #[test]
    fn seeded_design_makes_the_design_pass_a_no_op() {
        let net = network(&[8]);
        let design = Arc::new(PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap());
        let mut ir = PipelineIr::from_design(design.clone());
        PassManager::standard().run(&mut ir).unwrap();
        assert!(Arc::ptr_eq(ir.design().unwrap(), &design));
    }

    #[test]
    fn missing_inputs_are_reported_per_pass() {
        let empty = PipelineIr::default();
        for pass in PassManager::standard().passes() {
            let err = pass.run(&mut empty.clone()).unwrap_err();
            match err {
                FpgaError::InvalidConfig { what } => {
                    assert!(what.contains(pass.name()), "{what}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_content_sensitive() {
        let standard = PassManager::standard().fingerprint();
        let reordered = PassManager::new(vec![
            Box::new(GraphPass),
            Box::new(DesignPass),
            Box::new(PartitionPass::default()),
            Box::new(SchedulePass),
            Box::new(SimPass::single_threaded()),
        ])
        .fingerprint();
        let shorter = PassManager::new(vec![Box::new(DesignPass), Box::new(GraphPass)]);
        assert_ne!(standard, reordered);
        assert_ne!(standard, shorter.fingerprint());
        assert_eq!(standard, canonical_pipeline_fingerprint());
    }

    #[test]
    fn partition_count_and_sim_mode_do_not_change_the_fingerprint() {
        let a = PassManager::new(vec![Box::new(PartitionPass { partitions: 2 })]).fingerprint();
        let b = PassManager::new(vec![Box::new(PartitionPass { partitions: 8 })]).fingerprint();
        assert_eq!(a, b);
        let single = PassManager::new(vec![Box::new(SimPass::single_threaded())]).fingerprint();
        let par = PassManager::new(vec![Box::new(SimPass::partitioned(
            Executor::with_workers(4),
        ))])
        .fingerprint();
        assert_eq!(single, par);
    }

    #[test]
    fn partitioned_sim_pass_records_stats() {
        let mut ir = PipelineIr::for_network(network(&[16, 16]), pynq_cluster());
        let manager = PassManager::new(vec![
            Box::new(DesignPass),
            Box::new(GraphPass),
            Box::new(PartitionPass { partitions: 2 }),
            Box::new(SchedulePass),
            Box::new(SimPass::partitioned(Executor::with_workers(2))),
        ]);
        manager.run(&mut ir).unwrap();
        let stats = ir.partition_stats().unwrap();
        assert_eq!(stats.partitions_built, 2);
        assert!(stats.cross_partition_events > 0);

        let mut single = PipelineIr::for_network(network(&[16, 16]), pynq_cluster());
        PassManager::standard().run(&mut single).unwrap();
        assert_eq!(single.sim().unwrap(), ir.sim().unwrap());
    }
}
