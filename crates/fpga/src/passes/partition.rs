//! The `partition` pass: splits the tile task graph into contiguous per-PE
//! regions for the partitioned parallel simulator.
//!
//! A region is a contiguous range of pipeline layers (= PEs). Contiguity
//! matters because the task graph is strictly feed-forward — layer `i`
//! depends only on layer `i − 1` — so a contiguous split means every
//! region exchanges tiles with at most two neighbours, and all
//! cross-region traffic flows in one direction. Regions are balanced by
//! modelled PE work (`task_count × ET` cycles), and the dependency windows
//! of the boundary ([`TileTaskGraph::ifm_prereqs`] /
//! [`TileTaskGraph::ofm_contributors`]) are recorded per cut: they bound
//! the cross-partition message traffic the simulator will settle through
//! that cut.

use std::ops::Range;

use crate::taskgraph::TileTaskGraph;

/// The tile task graph split into contiguous per-PE regions.
///
/// Built deterministically from the graph and a requested region count;
/// the same inputs always produce the same split, so the partitioned
/// simulator's thread decomposition (and its telemetry) is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedGraph {
    regions: Vec<Range<usize>>,
    num_layers: usize,
    cut_traffic: Vec<u64>,
    cut_window: Vec<usize>,
}

impl PartitionedGraph {
    /// Splits `graph` into at most `partitions` contiguous regions, balanced
    /// by modelled PE cycles (`task_count × ET`).
    ///
    /// `partitions` is clamped to `[1, num_layers]` (an empty graph yields a
    /// single empty region). Region `r` is closed once it holds its
    /// proportional share of the total modelled work, or when exactly enough
    /// layers remain to give every later region one layer.
    pub fn build(graph: &TileTaskGraph, partitions: usize) -> Self {
        let n = graph.num_layers();
        let parts = partitions.clamp(1, n.max(1));
        let weights: Vec<u128> = (0..n)
            .map(|i| {
                let l = graph.layer(i);
                l.task_count() as u128 * u128::from(l.et.get())
            })
            .collect();
        let total: u128 = weights.iter().sum();

        let mut regions: Vec<Range<usize>> = Vec::with_capacity(parts);
        let mut start = 0usize;
        let mut prefix = 0u128;
        for (i, &w) in weights.iter().enumerate() {
            prefix += w;
            let r = regions.len();
            if r + 1 < parts {
                // Remaining layers exactly fill the remaining regions: cut now.
                let must_close = n - (i + 1) == parts - (r + 1);
                // This region holds its cumulative fair share of the work.
                let quota_met = prefix * parts as u128 >= total * (r as u128 + 1);
                if quota_met || must_close {
                    regions.push(start..i + 1);
                    start = i + 1;
                }
            }
        }
        regions.push(start..n);

        // Per-cut dependency-window stats: how many producer OFM tiles will
        // cross the cut (one message each), and how wide the consumer's
        // per-tile prerequisite window is.
        let mut cut_traffic = Vec::with_capacity(regions.len().saturating_sub(1));
        let mut cut_window = Vec::with_capacity(regions.len().saturating_sub(1));
        for region in regions.iter().take(regions.len().saturating_sub(1)) {
            let producer = region.end - 1;
            let p = graph.layer(producer);
            cut_traffic.push(p.ch_ofm as u64 * p.rc as u64);
            let consumer = region.end;
            let window = (0..graph.layer(consumer).ch_ifm)
                .filter_map(|j| graph.ifm_prereqs(consumer, j))
                .map(|range| range.count())
                .max()
                .unwrap_or(0);
            cut_window.push(window);
        }

        PartitionedGraph {
            regions,
            num_layers: n,
            cut_traffic,
            cut_window,
        }
    }

    /// The contiguous layer ranges, in pipeline order; they tile
    /// `0..num_layers` exactly.
    pub fn regions(&self) -> &[Range<usize>] {
        &self.regions
    }

    /// Number of regions (≥ 1).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of pipeline layers the split was built for.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Index of the region containing `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= num_layers`.
    pub fn region_of(&self, layer: usize) -> usize {
        self.regions
            .iter()
            .position(|r| r.contains(&layer))
            .expect("layer within the partitioned range")
    }

    /// OFM tiles that will cross cut `c` (between regions `c` and `c + 1`),
    /// one cross-partition message each.
    pub fn cut_traffic(&self) -> &[u64] {
        &self.cut_traffic
    }

    /// Widest consumer prerequisite window (producer OFM tiles per IFM
    /// tile) at each cut.
    pub fn cut_window(&self) -> &[usize] {
        &self.cut_window
    }

    /// Total cross-partition messages a single-image simulation will settle.
    pub fn total_cross_traffic(&self) -> u64 {
        self.cut_traffic.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PipelineDesign;
    use crate::device::FpgaDevice;
    use crate::layer::{ConvShape, Network};

    fn graph(filters: &[usize]) -> TileTaskGraph {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        let net = Network::new(layers).unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        TileTaskGraph::from_design(&d).unwrap()
    }

    #[test]
    fn regions_tile_the_layer_range_exactly() {
        let g = graph(&[16, 32, 64, 32, 16]);
        for parts in 1..=8 {
            let p = PartitionedGraph::build(&g, parts);
            assert_eq!(p.num_layers(), g.num_layers());
            assert!(p.num_regions() >= 1);
            assert!(p.num_regions() <= parts.min(g.num_layers()));
            let mut covered = 0;
            for (idx, r) in p.regions().iter().enumerate() {
                assert_eq!(r.start, covered, "regions must be contiguous");
                assert!(r.end > r.start, "region {idx} is empty");
                covered = r.end;
            }
            assert_eq!(covered, g.num_layers());
        }
    }

    #[test]
    fn partition_count_is_clamped() {
        let g = graph(&[16, 16]);
        assert_eq!(PartitionedGraph::build(&g, 0).num_regions(), 1);
        assert_eq!(PartitionedGraph::build(&g, 100).num_regions(), 2);
    }

    #[test]
    fn split_balances_modelled_work() {
        let g = graph(&[64, 64, 64, 64]);
        let p = PartitionedGraph::build(&g, 2);
        let work = |r: &Range<usize>| -> u128 {
            r.clone()
                .map(|i| g.layer(i).task_count() as u128 * u128::from(g.layer(i).et.get()))
                .sum()
        };
        let loads: Vec<u128> = p.regions().iter().map(work).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // The greedy quota split lands within the heaviest layer's work of
        // an even split (layer granularity bounds the achievable balance).
        let heaviest = (0..g.num_layers())
            .map(|i| g.layer(i).task_count() as u128 * u128::from(g.layer(i).et.get()))
            .max()
            .unwrap();
        assert!(max - min <= 2 * heaviest, "loads {loads:?}");
    }

    #[test]
    fn build_is_deterministic() {
        let g = graph(&[16, 32, 16]);
        assert_eq!(
            PartitionedGraph::build(&g, 3),
            PartitionedGraph::build(&g, 3)
        );
    }

    #[test]
    fn cut_stats_follow_the_dependency_windows() {
        let g = graph(&[16, 32, 16]);
        let p = PartitionedGraph::build(&g, 3);
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.cut_traffic().len(), 2);
        assert_eq!(p.cut_window().len(), 2);
        for (c, region) in p.regions().iter().take(2).enumerate() {
            let producer = g.layer(region.end - 1);
            assert_eq!(
                p.cut_traffic()[c],
                producer.ch_ofm as u64 * producer.rc as u64
            );
            assert!(p.cut_window()[c] >= 1);
        }
        assert_eq!(p.total_cross_traffic(), p.cut_traffic().iter().sum());
        assert_eq!(p.region_of(0), 0);
        assert_eq!(p.region_of(g.num_layers() - 1), p.num_regions() - 1);
    }
}
