//! FPGA resource models and multi-FPGA clusters.
//!
//! The paper evaluates on three Xilinx parts: the low-end Artix-7 **7A50T**,
//! the Zynq **7Z020** on the PYNQ-Z1 board, and the Zynq UltraScale+
//! **ZU9EG**. Physical boards are not available in this reproduction, so a
//! device is modelled by the four quantities the paper's abstraction
//! actually consumes: DSP slices (16-bit MACs per cycle), on-chip BRAM
//! capacity (tile buffers), external memory bandwidth, and clock frequency.
//! Nominal figures come from the public Xilinx datasheets.

use crate::{FpgaError, Result};

/// Resource model of one FPGA part.
///
/// # Examples
///
/// ```
/// use fnas_fpga::device::FpgaDevice;
///
/// let pynq = FpgaDevice::pynq();
/// assert_eq!(pynq.dsp_slices(), 220);
/// assert!(pynq.bram_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    name: String,
    dsp_slices: usize,
    bram_bytes: usize,
    bandwidth_bytes_per_cycle: f64,
    clock_mhz: f64,
}

impl FpgaDevice {
    /// Creates a custom device model.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] for zero resources or a
    /// non-positive clock.
    pub fn new(
        name: impl Into<String>,
        dsp_slices: usize,
        bram_bytes: usize,
        bandwidth_bytes_per_cycle: f64,
        clock_mhz: f64,
    ) -> Result<Self> {
        if dsp_slices == 0 || bram_bytes == 0 {
            return Err(FpgaError::InvalidConfig {
                what: "device needs non-zero DSP and BRAM resources".to_string(),
            });
        }
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(clock_mhz) || !positive(bandwidth_bytes_per_cycle) {
            return Err(FpgaError::InvalidConfig {
                what: "clock and bandwidth must be positive".to_string(),
            });
        }
        Ok(FpgaDevice {
            name: name.into(),
            dsp_slices,
            bram_bytes,
            bandwidth_bytes_per_cycle,
            clock_mhz,
        })
    }

    /// Xilinx Artix-7 **XC7A50T**: 120 DSP slices, 2 700 Kb BRAM.
    /// The paper's "low-end FPGA".
    ///
    /// The 50 MHz effective clock is a calibration: the abstraction ignores
    /// DMA setup, AXI contention and timing-closure derating that the
    /// paper's physical measurements include, and with this value the
    /// Table 1 NAS architecture lands near the paper's measured latency
    /// regime (see EXPERIMENTS.md).
    pub fn xc7a50t() -> Self {
        FpgaDevice::new("xc7a50t", 120, 2_700 * 1024 / 8, 30.0, 70.0)
            .expect("catalogue constants are valid")
    }

    /// Xilinx Zynq **XC7Z020**: 220 DSP slices, 4 480 Kb BRAM.
    /// The paper's "high-end FPGA" for the MNIST study. See
    /// [`FpgaDevice::xc7a50t`] for the effective-clock calibration note.
    pub fn xc7z020() -> Self {
        FpgaDevice::new("xc7z020", 220, 4_480 * 1024 / 8, 42.0, 50.0)
            .expect("catalogue constants are valid")
    }

    /// The PYNQ-Z1 board carries an XC7Z020; this alias matches the paper's
    /// "PYNQ board" phrasing.
    pub fn pynq() -> Self {
        let mut d = FpgaDevice::xc7z020();
        d.name = "pynq-z1 (xc7z020)".to_string();
        d
    }

    /// Xilinx Zynq UltraScale+ **ZU9EG**: 2 520 DSP slices, 32.1 Mb BRAM.
    /// Used for the CIFAR-10 and ImageNet studies. The 100 MHz effective
    /// clock follows the same calibration as [`FpgaDevice::xc7a50t`].
    pub fn zu9eg() -> Self {
        FpgaDevice::new("zu9eg", 2_520, 32_100 * 1024 / 8, 190.0, 100.0)
            .expect("catalogue constants are valid")
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of DSP slices (one 16-bit MAC per slice per cycle, after
    /// Zhang et al. \[13\]).
    pub fn dsp_slices(&self) -> usize {
        self.dsp_slices
    }

    /// On-chip BRAM capacity in bytes.
    pub fn bram_bytes(&self) -> usize {
        self.bram_bytes
    }

    /// External memory bandwidth in bytes per clock cycle.
    pub fn bandwidth_bytes_per_cycle(&self) -> f64 {
        self.bandwidth_bytes_per_cycle
    }

    /// Clock frequency in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }
}

/// A set of FPGAs cooperating on one pipeline, with an inter-device link.
///
/// The paper's schedule paradigm explicitly targets multi-FPGA systems
/// (\[4, 14\]); a cluster models the per-tile transfer cost between devices.
///
/// # Examples
///
/// ```
/// use fnas_fpga::device::{FpgaCluster, FpgaDevice};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 4, 2.0)?;
/// assert_eq!(cluster.len(), 4);
/// assert_eq!(cluster.total_dsp_slices(), 880);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaCluster {
    devices: Vec<FpgaDevice>,
    link_bytes_per_cycle: f64,
}

impl FpgaCluster {
    /// Creates a cluster from explicit devices and an inter-device link
    /// bandwidth (bytes per producer-side cycle).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] for an empty device list or a
    /// non-positive link bandwidth.
    pub fn new(devices: Vec<FpgaDevice>, link_bytes_per_cycle: f64) -> Result<Self> {
        if devices.is_empty() {
            return Err(FpgaError::InvalidConfig {
                what: "cluster needs at least one device".to_string(),
            });
        }
        if !(link_bytes_per_cycle.is_finite() && link_bytes_per_cycle > 0.0) {
            return Err(FpgaError::InvalidConfig {
                what: "link bandwidth must be positive".to_string(),
            });
        }
        Ok(FpgaCluster {
            devices,
            link_bytes_per_cycle,
        })
    }

    /// Creates a cluster of `count` copies of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] if `count` is zero or the link
    /// bandwidth is non-positive.
    pub fn homogeneous(
        device: FpgaDevice,
        count: usize,
        link_bytes_per_cycle: f64,
    ) -> Result<Self> {
        FpgaCluster::new(vec![device; count], link_bytes_per_cycle)
    }

    /// A single-device "cluster" (the common case).
    pub fn single(device: FpgaDevice) -> Self {
        FpgaCluster {
            devices: vec![device],
            link_bytes_per_cycle: f64::INFINITY,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the cluster has no devices (never constructible).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices, in pipeline order.
    pub fn devices(&self) -> &[FpgaDevice] {
        &self.devices
    }

    /// Inter-device link bandwidth in bytes per cycle.
    pub fn link_bytes_per_cycle(&self) -> f64 {
        self.link_bytes_per_cycle
    }

    /// DSP slices summed across the cluster.
    pub fn total_dsp_slices(&self) -> usize {
        self.devices.iter().map(FpgaDevice::dsp_slices).sum()
    }

    /// BRAM bytes summed across the cluster.
    pub fn total_bram_bytes(&self) -> usize {
        self.devices.iter().map(FpgaDevice::bram_bytes).sum()
    }

    /// The slowest clock in the cluster, used as the pipeline clock.
    pub fn pipeline_clock_mhz(&self) -> f64 {
        self.devices
            .iter()
            .map(FpgaDevice::clock_mhz)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_datasheets() {
        assert_eq!(FpgaDevice::xc7a50t().dsp_slices(), 120);
        assert_eq!(FpgaDevice::xc7z020().dsp_slices(), 220);
        assert_eq!(FpgaDevice::zu9eg().dsp_slices(), 2_520);
        assert!(FpgaDevice::zu9eg().bram_bytes() > FpgaDevice::xc7z020().bram_bytes());
        assert!(FpgaDevice::xc7z020().bram_bytes() > FpgaDevice::xc7a50t().bram_bytes());
    }

    #[test]
    fn pynq_is_a_7z020() {
        let pynq = FpgaDevice::pynq();
        assert_eq!(pynq.dsp_slices(), FpgaDevice::xc7z020().dsp_slices());
        assert!(pynq.name().contains("pynq"));
    }

    #[test]
    fn custom_device_validation() {
        assert!(FpgaDevice::new("x", 0, 1024, 1.0, 100.0).is_err());
        assert!(FpgaDevice::new("x", 10, 0, 1.0, 100.0).is_err());
        assert!(FpgaDevice::new("x", 10, 1024, 0.0, 100.0).is_err());
        assert!(FpgaDevice::new("x", 10, 1024, 1.0, -5.0).is_err());
        assert!(FpgaDevice::new("x", 10, 1024, 1.0, 100.0).is_ok());
    }

    #[test]
    fn cluster_aggregates_resources() {
        let c = FpgaCluster::homogeneous(FpgaDevice::xc7a50t(), 3, 1.0).unwrap();
        assert_eq!(c.total_dsp_slices(), 360);
        assert_eq!(c.total_bram_bytes(), 3 * FpgaDevice::xc7a50t().bram_bytes());
        assert_eq!(c.pipeline_clock_mhz(), FpgaDevice::xc7a50t().clock_mhz());
    }

    #[test]
    fn cluster_validation() {
        assert!(FpgaCluster::new(vec![], 1.0).is_err());
        assert!(FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 0.0).is_err());
        let single = FpgaCluster::single(FpgaDevice::pynq());
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
    }

    #[test]
    fn heterogeneous_cluster_uses_slowest_clock() {
        let fast = FpgaDevice::new("fast", 100, 1024, 4.0, 300.0).unwrap();
        let slow = FpgaDevice::new("slow", 100, 1024, 4.0, 50.0).unwrap();
        let c = FpgaCluster::new(vec![fast, slow], 2.0).unwrap();
        assert_eq!(c.pipeline_clock_mhz(), 50.0);
    }
}
