//! Unit-bearing newtypes shared across the FPGA model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A count of FPGA clock cycles.
///
/// # Examples
///
/// ```
/// use fnas_fpga::Cycles;
///
/// let total: Cycles = [Cycles::new(10), Cycles::new(5)].into_iter().sum();
/// assert_eq!(total.get(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Wraps a raw cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// The raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock milliseconds at `clock_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_mhz` is not finite and positive.
    pub fn to_millis(self, clock_mhz: f64) -> Millis {
        assert!(
            clock_mhz.is_finite() && clock_mhz > 0.0,
            "clock must be positive, got {clock_mhz}"
        );
        Millis::new(self.0 as f64 / (clock_mhz * 1e3))
    }

    /// Saturating multiplication by a dimensionless factor.
    pub fn saturating_mul(self, factor: u64) -> Cycles {
        Cycles(self.0.saturating_mul(factor))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// Saturating subtraction: schedule gaps never go negative.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A wall-clock duration in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Millis(f64);

impl Millis {
    /// Wraps a raw millisecond value.
    pub const fn new(ms: f64) -> Self {
        Millis(ms)
    }

    /// The raw millisecond value.
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl Sum for Millis {
    fn sum<I: Iterator<Item = Millis>>(iter: I) -> Millis {
        Millis(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.0)
    }
}

/// A count of multiply-accumulate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacCount(u64);

impl MacCount {
    /// Wraps a raw MAC count.
    pub const fn new(macs: u64) -> Self {
        MacCount(macs)
    }

    /// The raw MAC count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl Add for MacCount {
    type Output = MacCount;
    fn add(self, rhs: MacCount) -> MacCount {
        MacCount(self.0 + rhs.0)
    }
}

impl Sum for MacCount {
    fn sum<I: Iterator<Item = MacCount>>(iter: I) -> MacCount {
        MacCount(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for MacCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MACs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_millis_at_100mhz() {
        // 100 MHz ⇒ 100 000 cycles per millisecond.
        let ms = Cycles::new(250_000).to_millis(100.0);
        assert!((ms.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn zero_clock_panics() {
        let _ = Cycles::new(1).to_millis(0.0);
    }

    #[test]
    fn cycles_arithmetic_saturates_on_sub() {
        assert_eq!((Cycles::new(3) - Cycles::new(5)).get(), 0);
        assert_eq!((Cycles::new(5) - Cycles::new(3)).get(), 2);
        let mut c = Cycles::new(1);
        c += Cycles::new(2);
        assert_eq!(c.get(), 3);
        assert_eq!(Cycles::new(u64::MAX).saturating_mul(2).get(), u64::MAX);
    }

    #[test]
    fn sums_work_for_all_units() {
        let c: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(c.get(), 10);
        let m: MacCount = [MacCount::new(2), MacCount::new(3)].into_iter().sum();
        assert_eq!(m.get(), 5);
        let ms: Millis = [Millis::new(0.5), Millis::new(1.0)].into_iter().sum();
        assert!((ms.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
        assert_eq!(MacCount::new(7).to_string(), "7 MACs");
        assert_eq!(Millis::new(1.25).to_string(), "1.250 ms");
    }
}
