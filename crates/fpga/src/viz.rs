//! Schedule visualisation: render a [`TaskTrace`] as an SVG Gantt chart.
//!
//! One row per PE, one rectangle per executed task, colour-keyed by the
//! task's channel-tile pair (so OFM/IFM reuse runs show up as solid colour
//! blocks, exactly like the paper's Fig. 4(b)) or by image index for
//! streaming traces. No plotting stack needed — the output is a plain SVG
//! file any browser opens.

use std::fmt::Write as _;

use crate::sim::TaskTrace;
use crate::Cycles;

/// What the rectangle colours encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColorKey {
    /// Colour by the task's `(j, k)` channel-tile pair — makes data-reuse
    /// runs visible (the default).
    #[default]
    ChannelPair,
    /// Colour by image index — makes image-level pipelining visible in
    /// streaming traces.
    Image,
}

/// Options for [`render_gantt`].
#[derive(Debug, Clone, PartialEq)]
pub struct GanttOptions {
    /// Pixel width of the drawing area (time axis is scaled to fit).
    pub width: u32,
    /// Pixel height of one PE row.
    pub row_height: u32,
    /// Colour encoding.
    pub color_key: ColorKey,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 1200,
            row_height: 28,
            color_key: ColorKey::default(),
        }
    }
}

/// A small qualitative palette (12 distinguishable hues).
const PALETTE: [&str; 12] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#2f4b7c", "#a05195",
];

/// Renders `trace` as an SVG Gantt chart.
///
/// Returns an empty-chart SVG (axes only) for an empty trace.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
/// use fnas_fpga::sched::FnasScheduler;
/// use fnas_fpga::sim::simulate_traced;
/// use fnas_fpga::taskgraph::TileTaskGraph;
/// use fnas_fpga::viz::{render_gantt, GanttOptions};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 8, 8, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let graph = TileTaskGraph::from_design(&design)?;
/// let schedule = FnasScheduler::new().schedule(&graph);
/// let (_, trace) = simulate_traced(&graph, &schedule, &[])?;
/// let svg = render_gantt(&trace, &GanttOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("<rect"));
/// # Ok(())
/// # }
/// ```
pub fn render_gantt(trace: &TaskTrace, options: &GanttOptions) -> String {
    let events = trace.events();
    let makespan: u64 = events.iter().map(|e| e.end.get()).max().unwrap_or(1).max(1);
    let pes: usize = events.iter().map(|e| e.pe + 1).max().unwrap_or(1);
    let label_w = 70u32;
    let width = options.width.max(label_w + 100);
    let plot_w = (width - label_w) as f64;
    let height = options.row_height * pes as u32 + 40;

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"11\">"
    );
    let _ = write!(
        svg,
        "<rect width=\"{width}\" height=\"{height}\" fill=\"white\"/>"
    );
    // Row labels and separators.
    for pe in 0..pes {
        let y = 20 + pe as u32 * options.row_height;
        let _ = write!(
            svg,
            "<text x=\"4\" y=\"{}\" fill=\"#333\">PE{}</text>",
            y + options.row_height / 2 + 4,
            pe
        );
        let _ = write!(
            svg,
            "<line x1=\"{label_w}\" y1=\"{y}\" x2=\"{width}\" y2=\"{y}\" stroke=\"#ddd\"/>"
        );
    }
    // Task rectangles.
    for e in events {
        let x = label_w as f64 + e.start.get() as f64 / makespan as f64 * plot_w;
        let w = ((e.end.get() - e.start.get()) as f64 / makespan as f64 * plot_w).max(1.0);
        let y = 22 + e.pe as u32 * options.row_height;
        let h = options.row_height - 4;
        let color_idx = match options.color_key {
            ColorKey::ChannelPair => e.task.j * 5 + e.task.k * 3 + e.task.m,
            ColorKey::Image => e.image,
        } % PALETTE.len();
        let _ = write!(
            svg,
            "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{h}\" fill=\"{}\" \
             stroke=\"#fff\" stroke-width=\"0.5\"><title>pe{} img{} j{} k{} m{} [{}..{}]</title></rect>",
            PALETTE[color_idx],
            e.pe,
            e.image,
            e.task.j,
            e.task.k,
            e.task.m,
            e.start.get(),
            e.end.get()
        );
    }
    // Time axis.
    let axis_y = height - 14;
    let _ = write!(
        svg,
        "<text x=\"{label_w}\" y=\"{axis_y}\" fill=\"#666\">0</text>\
         <text x=\"{}\" y=\"{axis_y}\" fill=\"#666\" text-anchor=\"end\">{}</text>",
        width - 4,
        Cycles::new(makespan)
    );
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PipelineDesign;
    use crate::device::FpgaDevice;
    use crate::layer::{ConvShape, Network};
    use crate::sched::FnasScheduler;
    use crate::sim::simulate_traced;
    use crate::taskgraph::TileTaskGraph;

    fn trace() -> TaskTrace {
        let net = Network::new(vec![
            ConvShape::square(3, 8, 8, 3).unwrap(),
            ConvShape::square(8, 8, 8, 3).unwrap(),
        ])
        .unwrap();
        let design = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let graph = TileTaskGraph::from_design(&design).unwrap();
        let schedule = FnasScheduler::new().schedule(&graph);
        let transfers = vec![Cycles::new(0)];
        simulate_traced(&graph, &schedule, &transfers).unwrap().1
    }

    #[test]
    fn svg_contains_one_rect_per_task_plus_background() {
        let t = trace();
        let svg = render_gantt(&t, &GanttOptions::default());
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, t.events().len() + 1); // + background
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("PE0"));
        assert!(svg.contains("PE1"));
    }

    #[test]
    fn tags_are_balanced() {
        let svg = render_gantt(&trace(), &GanttOptions::default());
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        assert_eq!(
            svg.matches("<title>").count(),
            svg.matches("</title>").count()
        );
        // Every task rect (the ones with tooltips) is explicitly closed;
        // the background rect is self-closing.
        let t = trace();
        assert_eq!(svg.matches("</rect>").count(), t.events().len());
    }

    #[test]
    fn empty_trace_renders_axes_only() {
        let svg = render_gantt(&TaskTrace::default(), &GanttOptions::default());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 1); // just the background
    }

    #[test]
    fn image_color_key_renders_too() {
        let svg = render_gantt(
            &trace(),
            &GanttOptions {
                color_key: ColorKey::Image,
                ..GanttOptions::default()
            },
        );
        assert!(svg.contains("#4e79a7")); // image 0 always takes the first hue
    }
}
