//! **FNAS-Analyzer** (component ➃): closed-form latency estimation.
//!
//! Implements the paper's §3.6 model for the alternating-reuse FNAS
//! schedule. All quantities are per the paper's equations, with 0-based
//! layer indices:
//!
//! * per-task execution time `ET_i = Kh·Kw·Tr·Tc` (we use the effective
//!   per-task latency from the design, which equals the paper's value when
//!   the layer is compute-bound);
//! * processing time, Eq. (2):
//!   `PT_i = ET_i · |CHⁱᶠᵐᵢ| · |CHᵒᶠᵐᵢ₊₁| · |RCᵢ|` — the paper's printed
//!   equation omits the `|RC|` factor, but its own worked example
//!   (Fig. 3(e)) counts one task per row/col tile, so the factor is
//!   included here;
//! * start-time deltas, Eqs. (3) and (4), choosing the OFM or IFM form by
//!   the producer layer's reuse strategy;
//! * the latency lower bound, Eq. (5): the sum of all start deltas plus the
//!   last PE's processing time. Cross-device tile transfers (multi-FPGA
//!   designs) add their per-tile delay to the corresponding boundary.

use crate::design::{LayerDesign, PipelineDesign};
use crate::sched::ReuseStrategy;
use crate::{Cycles, Millis, Result};

/// Closed-form latency estimate for a pipeline design.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerReport {
    /// The latency lower bound in cycles: `max_i (start_i + PT_i)` — the
    /// paper's Eq. (5) strengthened to account for a bottleneck PE in the
    /// middle of the pipeline (Eq. (5) itself only tracks the last PE; see
    /// [`AnalyzerReport::eq5_cycles`] for the verbatim value).
    pub latency_cycles: Cycles,
    /// The same at the pipeline clock.
    pub latency: Millis,
    /// The paper's Eq. (5) value verbatim: `Σ Δt + PT_N`.
    pub eq5_cycles: Cycles,
    /// Per-layer per-task execution time `ET_i`.
    pub et: Vec<Cycles>,
    /// Per-layer processing time `PT_i` (Eq. 2, with the `|RC|` factor).
    pub processing: Vec<Cycles>,
    /// Start-time delta of each boundary `i → i+1` (Eqs. 3/4, plus
    /// transfer).
    pub start_deltas: Vec<Cycles>,
    /// Reuse strategy assumed for each layer (alternating, OFM first).
    pub reuse: Vec<ReuseStrategy>,
}

/// Analyzes `design` under the paper's alternating-reuse schedule (OFM
/// reuse on even layers).
///
/// # Errors
///
/// Currently infallible for designs produced by
/// [`PipelineDesign::generate`]; the `Result` covers future model
/// extensions that can reject hand-built designs.
///
/// # Examples
///
/// ```
/// use fnas_fpga::analyzer::analyze;
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 8, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let report = analyze(&design)?;
/// assert_eq!(report.latency_cycles, report.processing[0]);
/// # Ok(())
/// # }
/// ```
pub fn analyze(design: &PipelineDesign) -> Result<AnalyzerReport> {
    analyze_with_reuse(design, &alternating_reuse(design.layers().len()))
}

/// Analytic steady-state initiation interval of the pipeline: when images
/// stream through back to back, each PE repeats its per-image workload, so
/// the long-run cycles-per-image is set by the busiest PE — `max_i PT_i`.
///
/// An extension beyond the paper's single-image Eq. (5); validated against
/// [`simulate_stream`](crate::sim::simulate_stream) in the test suite.
///
/// # Examples
///
/// ```
/// use fnas_fpga::analyzer::pipeline_interval;
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 8, 16, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// assert!(pipeline_interval(&design).get() > 0);
/// # Ok(())
/// # }
/// ```
pub fn pipeline_interval(design: &PipelineDesign) -> Cycles {
    design
        .layers()
        .iter()
        .map(|l| l.task_cycles().saturating_mul(l.task_count() as u64))
        .max()
        .unwrap_or(Cycles::new(0))
}

/// Analytic throughput in images per second at the design clock, derived
/// from [`pipeline_interval`].
pub fn throughput_fps(design: &PipelineDesign) -> f64 {
    let interval = pipeline_interval(design).get();
    if interval == 0 {
        0.0
    } else {
        design.clock_mhz() * 1e6 / interval as f64
    }
}

/// The paper's default strategy assignment: OFM reuse on even layers, IFM
/// reuse on odd layers.
pub fn alternating_reuse(layers: usize) -> Vec<ReuseStrategy> {
    (0..layers)
        .map(|i| {
            if i % 2 == 0 {
                ReuseStrategy::OfmReuse
            } else {
                ReuseStrategy::IfmReuse
            }
        })
        .collect()
}

/// [`analyze`] with an explicit per-layer reuse assignment (for ablations).
///
/// # Errors
///
/// See [`analyze`].
///
/// # Panics
///
/// Panics if `reuse.len()` differs from the design's layer count.
pub fn analyze_with_reuse(
    design: &PipelineDesign,
    reuse: &[ReuseStrategy],
) -> Result<AnalyzerReport> {
    let layers = design.layers();
    assert_eq!(
        reuse.len(),
        layers.len(),
        "reuse assignment must cover every layer"
    );
    let et: Vec<Cycles> = layers.iter().map(LayerDesign::task_cycles).collect();
    let processing: Vec<Cycles> = layers
        .iter()
        .zip(&et)
        .map(|(l, et)| et.saturating_mul(l.task_count() as u64))
        .collect();

    let mut start_deltas = Vec::with_capacity(layers.len().saturating_sub(1));
    for i in 1..layers.len() {
        let producer = &layers[i - 1];
        let consumer = &layers[i];
        let et_prev = et[i - 1].get();
        // ⌈Tn_i / Tm_{i-1}⌉ — OFM tiles of the producer needed per IFM tile.
        let tiles_per_ifm = (consumer.tiling().tn.div_ceil(producer.tiling().tm)).max(1) as u64;
        let delta = match reuse[i - 1] {
            ReuseStrategy::OfmReuse => {
                // Eq. (3): ⌈CH_{i-1}/Tn_{i-1}⌉ · ⌈Tn_i/Tm_{i-1}⌉ · ET_{i-1}
                producer.ch_ifm_tiles() as u64 * tiles_per_ifm * et_prev
            }
            ReuseStrategy::IfmReuse => {
                // Eq. (4): [(⌈CH_{i-1}/Tn_{i-1}⌉ − 1) · ⌈CH_i/Tm_{i-1}⌉
                //           + ⌈Tn_i/Tm_{i-1}⌉] · ET_{i-1}
                ((producer.ch_ifm_tiles() as u64 - 1) * producer.ch_ofm_tiles() as u64
                    + tiles_per_ifm)
                    * et_prev
            }
        };
        let transfer = design.boundary_transfer_cycles(i - 1).get();
        start_deltas.push(Cycles::new(delta + transfer));
    }

    let eq5_cycles = start_deltas.iter().copied().sum::<Cycles>()
        + *processing.last().expect("designs are non-empty");
    // Strengthened bound: every PE must still execute its whole workload
    // after its (lower-bounded) start time, so the pipeline cannot finish
    // before the slowest such chain.
    let mut start = Cycles::new(0);
    let mut latency_cycles = Cycles::new(0);
    for (i, pt) in processing.iter().enumerate() {
        if i > 0 {
            start += start_deltas[i - 1];
        }
        latency_cycles = latency_cycles.max(start + *pt);
    }
    Ok(AnalyzerReport {
        latency: latency_cycles.to_millis(design.clock_mhz()),
        latency_cycles,
        eq5_cycles,
        et,
        processing,
        start_deltas,
        reuse: reuse.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use crate::layer::{ConvShape, Network};
    use crate::sched::FnasScheduler;
    use crate::sim::simulate_design;
    use crate::taskgraph::TileTaskGraph;

    fn design(filters: &[usize]) -> PipelineDesign {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        PipelineDesign::generate(&Network::new(layers).unwrap(), &FpgaDevice::pynq()).unwrap()
    }

    #[test]
    fn single_layer_latency_is_processing_time() {
        let d = design(&[8]);
        let r = analyze(&d).unwrap();
        assert_eq!(r.latency_cycles, r.processing[0]);
        assert!(r.start_deltas.is_empty());
    }

    #[test]
    fn processing_time_counts_every_task() {
        let d = design(&[8, 16]);
        let r = analyze(&d).unwrap();
        for (l, pt) in d.layers().iter().zip(&r.processing) {
            assert_eq!(pt.get(), l.task_count() as u64 * l.task_cycles().get());
        }
    }

    #[test]
    fn reuse_assignment_alternates() {
        let r = alternating_reuse(4);
        assert_eq!(
            r,
            vec![
                ReuseStrategy::OfmReuse,
                ReuseStrategy::IfmReuse,
                ReuseStrategy::OfmReuse,
                ReuseStrategy::IfmReuse
            ]
        );
    }

    /// The analyzer is a *lower bound* (§3.6: "a tight lower bound"): the
    /// simulator, which executes the real schedule with all stalls, can
    /// never beat it by more than rounding, and should be close.
    #[test]
    fn analyzer_lower_bounds_simulation() {
        for filters in [&[16usize, 32][..], &[64, 64, 64, 64][..], &[8, 16, 32][..]] {
            let d = design(filters);
            let g = TileTaskGraph::from_design(&d).unwrap();
            let s = FnasScheduler::new().schedule(&g);
            let sim = simulate_design(&d, &g, &s).unwrap();
            let ana = analyze(&d).unwrap();
            assert!(
                ana.latency_cycles <= sim.makespan,
                "{filters:?}: analyzer {} exceeds simulated {}",
                ana.latency_cycles,
                sim.makespan
            );
            // And the bound is tight-ish: within 2× on these pipelines.
            assert!(
                sim.makespan.get() <= 2 * ana.latency_cycles.get(),
                "{filters:?}: bound too loose: sim {} vs analyzer {}",
                sim.makespan,
                ana.latency_cycles
            );
        }
    }

    #[test]
    fn eq3_matches_hand_computation() {
        let d = design(&[8, 16]);
        let r = analyze(&d).unwrap();
        let p = &d.layers()[0];
        let c = &d.layers()[1];
        let expected = p.ch_ifm_tiles() as u64
            * (c.tiling().tn.div_ceil(p.tiling().tm)) as u64
            * p.task_cycles().get();
        assert_eq!(r.start_deltas[0].get(), expected);
    }

    #[test]
    fn eq4_matches_hand_computation() {
        let d = design(&[8, 16, 16]);
        let r = analyze(&d).unwrap();
        // Boundary 1→2: producer layer 1 uses IFM reuse.
        let p = &d.layers()[1];
        let c = &d.layers()[2];
        let tiles_per_ifm = (c.tiling().tn.div_ceil(p.tiling().tm)).max(1) as u64;
        let expected = ((p.ch_ifm_tiles() as u64 - 1) * p.ch_ofm_tiles() as u64 + tiles_per_ifm)
            * p.task_cycles().get();
        assert_eq!(r.start_deltas[1].get(), expected);
    }

    #[test]
    fn eq5_is_sum_of_deltas_plus_last_processing() {
        let d = design(&[16, 16, 16, 16]);
        let r = analyze(&d).unwrap();
        let manual: u64 = r.start_deltas.iter().map(|c| c.get()).sum::<u64>()
            + r.processing.last().unwrap().get();
        assert_eq!(r.eq5_cycles.get(), manual);
        // The strengthened bound dominates Eq. (5) by construction.
        assert!(r.latency_cycles >= r.eq5_cycles);
        assert!(r.latency.get() > 0.0);
    }

    #[test]
    fn bottleneck_middle_pe_raises_the_bound_above_eq5() {
        // A fat middle layer with skinny neighbours: Eq. (5) only sees the
        // last PE and undershoots; the max-form bound tracks the bottleneck.
        let net = Network::new(vec![
            ConvShape::square(3, 8, 16, 3).unwrap(),
            ConvShape::square(8, 128, 16, 7).unwrap(),
            ConvShape::square(128, 8, 16, 1).unwrap(),
        ])
        .unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let r = analyze(&d).unwrap();
        assert!(
            r.latency_cycles > r.eq5_cycles,
            "max-form {} should exceed eq5 {}",
            r.latency_cycles,
            r.eq5_cycles
        );
    }

    #[test]
    fn tighter_device_means_longer_latency() {
        let mk = |dev: &FpgaDevice| {
            let net = Network::new(vec![
                ConvShape::square(3, 64, 16, 3).unwrap(),
                ConvShape::square(64, 64, 16, 3).unwrap(),
            ])
            .unwrap();
            analyze(&PipelineDesign::generate(&net, dev).unwrap())
                .unwrap()
                .latency_cycles
        };
        assert!(mk(&FpgaDevice::xc7a50t()) >= mk(&FpgaDevice::zu9eg()));
    }

    #[test]
    fn pipeline_interval_matches_streamed_simulation() {
        use crate::sim::simulate_design_stream;
        use crate::Cycles;
        for filters in [&[16usize, 32][..], &[64, 64, 64, 64][..]] {
            let d = design(filters);
            let g = TileTaskGraph::from_design(&d).unwrap();
            let s = FnasScheduler::new().schedule(&g);
            let stream = simulate_design_stream(&d, &g, &s, 8, Cycles::new(0)).unwrap();
            let analytic = pipeline_interval(&d).get();
            let simulated = stream.steady_interval().get();
            // The bottleneck PE's work per image lower-bounds the interval;
            // the simulated interval should sit within 30% of it.
            assert!(
                simulated + 1 >= analytic,
                "sim {simulated} < analytic {analytic}"
            );
            assert!(
                simulated <= analytic + analytic * 3 / 10,
                "{filters:?}: sim {simulated} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn throughput_is_positive_and_scales_with_the_device() {
        let net = Network::new(vec![
            ConvShape::square(3, 64, 16, 3).unwrap(),
            ConvShape::square(64, 64, 16, 3).unwrap(),
        ])
        .unwrap();
        let small =
            throughput_fps(&PipelineDesign::generate(&net, &FpgaDevice::xc7a50t()).unwrap());
        let large = throughput_fps(&PipelineDesign::generate(&net, &FpgaDevice::zu9eg()).unwrap());
        assert!(small > 0.0);
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "reuse assignment")]
    fn wrong_reuse_length_panics() {
        let d = design(&[8, 8]);
        let _ = analyze_with_reuse(&d, &[ReuseStrategy::OfmReuse]);
    }
}
