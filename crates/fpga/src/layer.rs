//! Convolution workload shapes.
//!
//! The FNAS abstraction describes a child network as a pipeline of
//! convolutional operations, each characterised by the six quantities of
//! §3.3 of the paper: input channels `N`, output channels `M`, output rows
//! `R`, output columns `C`, and the filter extent `Kh × Kw`.

use crate::{FpgaError, MacCount, Result};

/// Shape of one convolutional layer as seen by the FPGA design flow.
///
/// # Examples
///
/// ```
/// use fnas_fpga::layer::ConvShape;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let layer = ConvShape::square(3, 64, 32, 3)?;
/// assert_eq!(layer.macs().get(), 3 * 64 * 32 * 32 * 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    in_channels: usize,
    out_channels: usize,
    out_rows: usize,
    out_cols: usize,
    kernel_h: usize,
    kernel_w: usize,
}

impl ConvShape {
    /// Creates a layer shape `⟨N, M, R, C, Kh, Kw⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] if any extent is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        out_rows: usize,
        out_cols: usize,
        kernel_h: usize,
        kernel_w: usize,
    ) -> Result<Self> {
        if in_channels == 0
            || out_channels == 0
            || out_rows == 0
            || out_cols == 0
            || kernel_h == 0
            || kernel_w == 0
        {
            return Err(FpgaError::InvalidConfig {
                what: format!(
                    "conv shape extents must be non-zero, got N={in_channels} M={out_channels} R={out_rows} C={out_cols} Kh={kernel_h} Kw={kernel_w}"
                ),
            });
        }
        Ok(ConvShape {
            in_channels,
            out_channels,
            out_rows,
            out_cols,
            kernel_h,
            kernel_w,
        })
    }

    /// Square feature maps and square kernel: `⟨n, m, r, r, k, k⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] if any extent is zero.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        extent: usize,
        kernel: usize,
    ) -> Result<Self> {
        ConvShape::new(in_channels, out_channels, extent, extent, kernel, kernel)
    }

    /// Input channels `N`.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channels (filters) `M`.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output rows `R`.
    pub fn out_rows(&self) -> usize {
        self.out_rows
    }

    /// Output columns `C`.
    pub fn out_cols(&self) -> usize {
        self.out_cols
    }

    /// Filter height `Kh`.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Filter width `Kw`.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// Total multiply-accumulate operations: `N·M·R·C·Kh·Kw`.
    pub fn macs(&self) -> MacCount {
        MacCount::new(
            self.in_channels as u64
                * self.out_channels as u64
                * self.out_rows as u64
                * self.out_cols as u64
                * self.kernel_h as u64
                * self.kernel_w as u64,
        )
    }
}

/// A pipeline of convolutional layers, consecutive layers channel-compatible.
///
/// # Examples
///
/// ```
/// use fnas_fpga::layer::{ConvShape, Network};
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![
///     ConvShape::square(1, 16, 28, 5)?,
///     ConvShape::square(16, 32, 28, 3)?,
/// ])?;
/// assert_eq!(net.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    layers: Vec<ConvShape>,
}

impl Network {
    /// Creates a network, validating channel compatibility between
    /// consecutive layers.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] for an empty pipeline or when
    /// layer `i+1`'s input channels differ from layer `i`'s output channels.
    pub fn new(layers: Vec<ConvShape>) -> Result<Self> {
        if layers.is_empty() {
            return Err(FpgaError::InvalidConfig {
                what: "network needs at least one layer".to_string(),
            });
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].out_channels() != pair[1].in_channels() {
                return Err(FpgaError::InvalidConfig {
                    what: format!(
                        "layer {} produces {} channels but layer {} consumes {}",
                        i,
                        pair[0].out_channels(),
                        i + 1,
                        pair[1].in_channels()
                    ),
                });
            }
        }
        Ok(Network { layers })
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers (never constructible).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, first to last.
    pub fn layers(&self) -> &[ConvShape] {
        &self.layers
    }

    /// Layer `i`, if present.
    pub fn get(&self, i: usize) -> Option<&ConvShape> {
        self.layers.get(i)
    }

    /// Total MAC operations across the pipeline.
    pub fn total_macs(&self) -> MacCount {
        self.layers.iter().map(ConvShape::macs).sum()
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a ConvShape;
    type IntoIter = std::slice::Iter<'a, ConvShape>;
    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_formula() {
        let l = ConvShape::new(3, 8, 10, 12, 3, 5).unwrap();
        assert_eq!(l.macs().get(), 3 * 8 * 10 * 12 * 3 * 5);
    }

    #[test]
    fn zero_extent_rejected() {
        assert!(ConvShape::new(0, 1, 1, 1, 1, 1).is_err());
        assert!(ConvShape::square(1, 1, 0, 1).is_err());
    }

    #[test]
    fn network_checks_channel_compatibility() {
        let a = ConvShape::square(3, 16, 8, 3).unwrap();
        let good = ConvShape::square(16, 8, 8, 3).unwrap();
        let bad = ConvShape::square(12, 8, 8, 3).unwrap();
        assert!(Network::new(vec![a, good]).is_ok());
        let err = Network::new(vec![a, bad]).unwrap_err();
        assert!(err.to_string().contains("16"));
        assert!(Network::new(vec![]).is_err());
    }

    #[test]
    fn network_totals_and_iteration() {
        let a = ConvShape::square(1, 2, 4, 3).unwrap();
        let b = ConvShape::square(2, 4, 4, 3).unwrap();
        let net = Network::new(vec![a, b]).unwrap();
        assert_eq!(net.total_macs(), a.macs() + b.macs());
        assert_eq!(net.into_iter().count(), 2);
        assert_eq!(net.get(1), Some(&b));
        assert_eq!(net.get(5), None);
    }
}
