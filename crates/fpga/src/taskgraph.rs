//! **FNAS-GG** (component ➁): the tile-based task graph.
//!
//! A task `v(i, j, k, m)` of layer `i` consumes IFM tile `T_ifm(i, j, m)`
//! and contributes to OFM tile `T_ofm(i+1, k, m)` (§3.4 of the paper).
//! Two dependency families exist:
//!
//! * **inter-layer** — `T_ofm(i+1, k, m)` is complete only when *every*
//!   input-channel tile `j` has been accumulated into it, i.e. after all
//!   `|CHⁱᶠᵐᵢ|` tasks with that `(k, m)`;
//! * **intra-layer** — `T_ifm(i, j, m)` becomes ready when the OFM tiles of
//!   the *previous* layer that cover its channel range are complete. When
//!   `Tn_i = Tm_{i−1}` this is the 1:1 mapping; otherwise a channel-interval
//!   overlap (Fig. 3(d)). The paper states the overlap as
//!   `(j−1)·Tn/Tm + 1 ≤ k ≤ j·Tn/Tm`, which is exact only when `Tm | Tn`;
//!   we use the general interval form `⌊j·Tn/Tm⌋ ‥ ⌈((j+1)·Tn)/Tm⌉ − 1`
//!   (clamped to the channel count), which reduces to the paper's rule in
//!   the divisible case.
//!
//! All indices in this module are 0-based (the paper uses 1-based).

use std::ops::RangeInclusive;

use crate::design::{LayerDesign, PipelineDesign};
use crate::{Cycles, FpgaError, Result};

/// Coordinates of one task: input-channel tile `j`, output-channel tile `k`
/// and row/col tile `m`, all 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskCoord {
    /// IFM channel-tile index.
    pub j: usize,
    /// OFM channel-tile index.
    pub k: usize,
    /// Row/col tile index.
    pub m: usize,
}

/// Static description of one layer's tasks within the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTasks {
    /// `|CHⁱᶠᵐ|` — number of input-channel tiles.
    pub ch_ifm: usize,
    /// `|CHᵒᶠᵐ|` — number of output-channel tiles this layer produces.
    pub ch_ofm: usize,
    /// `|RC|` — number of row/col tiles.
    pub rc: usize,
    /// `Tn` of this layer (consumer channel-tile granularity).
    pub tn: usize,
    /// `Tm` of this layer (producer channel-tile granularity).
    pub tm: usize,
    /// Input channel count `N`.
    pub in_channels: usize,
    /// Per-task latency `ET` in cycles.
    pub et: Cycles,
}

impl LayerTasks {
    /// Total number of tasks in this layer.
    pub fn task_count(&self) -> usize {
        self.ch_ifm * self.ch_ofm * self.rc
    }
}

/// The tile-based task graph of a whole pipeline design.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
/// use fnas_fpga::taskgraph::TileTaskGraph;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![
///     ConvShape::square(3, 16, 16, 3)?,
///     ConvShape::square(16, 16, 16, 3)?,
/// ])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let graph = TileTaskGraph::from_design(&design)?;
/// assert_eq!(graph.num_layers(), 2);
/// assert!(graph.total_tasks() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileTaskGraph {
    layers: Vec<LayerTasks>,
}

impl TileTaskGraph {
    /// Builds the graph from a pipeline design.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidConfig`] if consecutive layers disagree on
    /// the spatial grid (the design generator always harmonises it, so this
    /// indicates a hand-built design).
    pub fn from_design(design: &PipelineDesign) -> Result<Self> {
        let rc: Vec<usize> = design.layers().iter().map(LayerDesign::rc_tiles).collect();
        if rc.windows(2).any(|w| w[0] != w[1]) {
            return Err(FpgaError::InvalidConfig {
                what: format!("layers disagree on the spatial grid: {rc:?}"),
            });
        }
        let layers = design
            .layers()
            .iter()
            .map(|l| LayerTasks {
                ch_ifm: l.ch_ifm_tiles(),
                ch_ofm: l.ch_ofm_tiles(),
                rc: l.rc_tiles(),
                tn: l.tiling().tn,
                tm: l.tiling().tm,
                in_channels: l.shape().in_channels(),
                et: l.task_cycles(),
            })
            .collect();
        Ok(TileTaskGraph { layers })
    }

    /// Number of pipeline layers (= PEs).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Static task data for layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &LayerTasks {
        &self.layers[i]
    }

    /// All layers in pipeline order.
    pub fn layers(&self) -> &[LayerTasks] {
        &self.layers
    }

    /// Total number of tasks across the pipeline.
    pub fn total_tasks(&self) -> usize {
        self.layers.iter().map(LayerTasks::task_count).sum()
    }

    /// The previous-layer OFM tiles (their `k` indices) that IFM tile `j` of
    /// layer `i` depends on — the intra-layer dependency rule of §3.4.
    ///
    /// Returns `None` for layer 0, whose input tiles are external data and
    /// ready immediately.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_layers()` or `j` is out of range for layer `i`.
    pub fn ifm_prereqs(&self, i: usize, j: usize) -> Option<RangeInclusive<usize>> {
        assert!(i < self.layers.len(), "layer {i} out of range");
        let layer = &self.layers[i];
        assert!(j < layer.ch_ifm, "ifm tile {j} out of range");
        if i == 0 {
            return None;
        }
        let producer = &self.layers[i - 1];
        // Channels covered by IFM tile j of layer i.
        let lo_ch = j * layer.tn;
        let hi_ch = ((j + 1) * layer.tn).min(layer.in_channels); // exclusive
                                                                 // Producer OFM tiles have granularity Tm_{i-1}.
        let first = lo_ch / producer.tm;
        let last = hi_ch.div_ceil(producer.tm).saturating_sub(1);
        let last = last.min(producer.ch_ofm - 1);
        Some(first..=last)
    }

    /// Number of tasks that must complete before OFM tile `(k, m)` of the
    /// boundary after layer `i` is ready: one per input-channel tile.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn ofm_contributors(&self, i: usize) -> usize {
        self.layers[i].ch_ifm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Tiling;
    use crate::device::FpgaDevice;
    use crate::layer::{ConvShape, Network};

    /// Hand-built graph matching the paper's Fig. 3(d)/(e) worked example:
    /// layer 1 has N/Tn = 2 input tiles; the boundary into layer 2 has
    /// M/Tm = 3 OFM tiles; layer 2 again has N/Tn = 2 input tiles and 3
    /// output tiles; RC = 2 everywhere.
    fn paper_example() -> TileTaskGraph {
        // Concrete channel counts realising the ratios: layer1 N=6 (Tn=3),
        // M=6 (Tm=2) → 2 ifm tiles, 3 ofm tiles. Layer2 N=6 (Tn=3), M=6
        // (Tm=2).
        TileTaskGraph {
            layers: vec![
                LayerTasks {
                    ch_ifm: 2,
                    ch_ofm: 3,
                    rc: 2,
                    tn: 3,
                    tm: 2,
                    in_channels: 6,
                    et: Cycles::new(10),
                },
                LayerTasks {
                    ch_ifm: 2,
                    ch_ofm: 3,
                    rc: 2,
                    tn: 3,
                    tm: 2,
                    in_channels: 6,
                    et: Cycles::new(10),
                },
            ],
        }
    }

    #[test]
    fn fig3e_task_counts() {
        let g = paper_example();
        // Fig. 3(e): each conv layer has 12 task nodes.
        assert_eq!(g.layer(0).task_count(), 12);
        assert_eq!(g.layer(1).task_count(), 12);
        assert_eq!(g.total_tasks(), 24);
    }

    #[test]
    fn fig3d_intra_layer_dependencies() {
        let g = paper_example();
        // Layer 2 (index 1): Tn = 3, producer Tm = 2 over 6 channels.
        // IFM tile 0 covers channels 0..3 → OFM tiles 0..=1.
        assert_eq!(g.ifm_prereqs(1, 0), Some(0..=1));
        // IFM tile 1 covers channels 3..6 → OFM tiles 1..=2.
        assert_eq!(g.ifm_prereqs(1, 1), Some(1..=2));
        // Layer 0 reads external data.
        assert_eq!(g.ifm_prereqs(0, 0), None);
    }

    #[test]
    fn one_to_one_mapping_when_tn_equals_tm() {
        let g = TileTaskGraph {
            layers: vec![
                LayerTasks {
                    ch_ifm: 1,
                    ch_ofm: 4,
                    rc: 1,
                    tn: 8,
                    tm: 4,
                    in_channels: 8,
                    et: Cycles::new(1),
                },
                LayerTasks {
                    ch_ifm: 4,
                    ch_ofm: 2,
                    rc: 1,
                    tn: 4,
                    tm: 8,
                    in_channels: 16,
                    et: Cycles::new(1),
                },
            ],
        };
        // Tn (consumer) = Tm (producer) = 4 ⇒ tile j needs exactly tile j.
        for j in 0..4 {
            assert_eq!(g.ifm_prereqs(1, j), Some(j..=j));
        }
    }

    #[test]
    fn prereqs_clamp_to_producer_tile_count() {
        // Consumer's last tile covers a channel remainder beyond the
        // producer's final tile boundary.
        let g = TileTaskGraph {
            layers: vec![
                LayerTasks {
                    ch_ifm: 1,
                    ch_ofm: 3, // ceil(10 / 4) with tm = 4 over 10 channels
                    rc: 1,
                    tn: 1,
                    tm: 4,
                    in_channels: 1,
                    et: Cycles::new(1),
                },
                LayerTasks {
                    ch_ifm: 2, // ceil(10 / 7)
                    ch_ofm: 1,
                    rc: 1,
                    tn: 7,
                    tm: 10,
                    in_channels: 10,
                    et: Cycles::new(1),
                },
            ],
        };
        // Tile 1 covers channels 7..10 → producer tiles floor(7/4)=1 ..= 2.
        assert_eq!(g.ifm_prereqs(1, 1), Some(1..=2));
    }

    #[test]
    fn from_design_round_trip() {
        let net = Network::new(vec![
            ConvShape::square(3, 16, 16, 3).unwrap(),
            ConvShape::square(16, 32, 16, 3).unwrap(),
        ])
        .unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let g = TileTaskGraph::from_design(&d).unwrap();
        assert_eq!(g.num_layers(), 2);
        for (lt, ld) in g.layers().iter().zip(d.layers()) {
            assert_eq!(lt.task_count(), ld.task_count());
            assert_eq!(lt.et, ld.task_cycles());
        }
        // Every non-first IFM tile has at least one producer prereq.
        for j in 0..g.layer(1).ch_ifm {
            let r = g.ifm_prereqs(1, j).unwrap();
            assert!(r.start() <= r.end());
            assert!(*r.end() < g.layer(0).ch_ofm);
        }
    }

    #[test]
    fn ofm_contributors_equals_ifm_tile_count() {
        let g = paper_example();
        assert_eq!(g.ofm_contributors(0), 2);
        assert_eq!(g.ofm_contributors(1), 2);
    }

    #[test]
    fn mismatched_grids_rejected() {
        // Hand-build a design with inconsistent rc grids via a network whose
        // spatial extents differ and a doctored tiling. Easiest: construct
        // the error through from_design on a manually assembled design is
        // not possible (fields are private), so emulate by checking that
        // generate + harmonisation always yields consistent grids instead.
        let net = Network::new(vec![
            ConvShape::new(3, 8, 32, 32, 3, 3).unwrap(),
            ConvShape::new(8, 8, 16, 16, 3, 3).unwrap(),
        ])
        .unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        assert!(TileTaskGraph::from_design(&d).is_ok());
        let _ = Tiling::new(1, 1, 1, 1);
    }
}
