//! Cycle-level discrete-event simulation of a scheduled pipeline.
//!
//! The paper measures clock cycles on PYNQ boards (Fig. 8); this simulator
//! stands in for the silicon. Each layer's PE executes its scheduled tasks;
//! a task may start once its IFM tile is ready, where tile readiness follows
//! the task-graph dependency rules exactly: an OFM tile completes when all
//! of its input-channel contributions have been accumulated, and an IFM tile
//! becomes ready when the producer OFM tiles covering its channel range have
//! arrived (plus an inter-FPGA transfer delay when the producer PE lives on
//! another device).
//!
//! With [`Schedule::reorder_on_stall`] set, a blocked PE executes the first
//! *ready* task from its remaining list instead (the paper's ready-to-run
//! queue, P3); otherwise it stalls until the nominal next task unblocks —
//! the behaviour of the fixed scheduling baseline.
//!
//! Beyond the paper's single-image latency, [`simulate_stream`] runs a
//! stream of images through the same pipeline: each PE repeats its
//! per-image schedule, images overlap across PEs, and the report separates
//! per-image latency from the steady-state initiation interval — the
//! throughput picture the paper's "low-batch real-time" motivation implies.

pub mod parallel;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::design::PipelineDesign;
use crate::sched::Schedule;
use crate::taskgraph::TileTaskGraph;
use crate::{Cycles, FpgaError, Millis, Result};

/// Per-PE execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeStats {
    /// Cycle at which the PE issued its first task.
    pub start: Cycles,
    /// Cycle at which the PE finished its last task.
    pub finish: Cycles,
    /// Cycles the PE spent computing.
    pub busy: Cycles,
    /// Idle cycles between `start` and `finish` (pipeline stalls).
    pub stall: Cycles,
    /// Number of times the PE resumed after waiting for data.
    pub stall_events: usize,
}

/// Result of simulating one schedule on one image.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
/// use fnas_fpga::sched::FnasScheduler;
/// use fnas_fpga::sim::simulate_design;
/// use fnas_fpga::taskgraph::TileTaskGraph;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 8, 8, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let graph = TileTaskGraph::from_design(&design)?;
/// let schedule = FnasScheduler::new().schedule(&graph);
/// let report = simulate_design(&design, &graph, &schedule)?;
/// assert!(report.makespan.get() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end cycles from first issue to last completion.
    pub makespan: Cycles,
    /// Wall-clock latency at the pipeline clock.
    pub latency: Millis,
    /// Per-PE statistics, in layer order.
    pub pes: Vec<PeStats>,
}

impl SimReport {
    /// Total stall cycles across all PEs.
    pub fn total_stall(&self) -> Cycles {
        self.pes.iter().map(|p| p.stall).sum()
    }
}

/// Result of streaming several images through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Cycles from the first issue to the last image's completion.
    pub makespan: Cycles,
    /// Completion cycle of each image, in arrival order.
    pub per_image_finish: Vec<Cycles>,
    /// Per-PE statistics over the whole stream.
    pub pes: Vec<PeStats>,
}

impl StreamReport {
    /// Latency of the first image (equals the single-image makespan when
    /// images arrive back to back).
    pub fn first_latency(&self) -> Cycles {
        self.per_image_finish.first().copied().unwrap_or_default()
    }

    /// Steady-state initiation interval: mean cycles between consecutive
    /// image completions (zero for a single image).
    pub fn steady_interval(&self) -> Cycles {
        match self.per_image_finish.as_slice() {
            [] | [_] => Cycles::new(0),
            finishes => {
                let first = finishes[0].get();
                let last = finishes[finishes.len() - 1].get();
                Cycles::new((last - first) / (finishes.len() as u64 - 1))
            }
        }
    }

    /// Images per second at `clock_mhz`, using the steady-state interval.
    ///
    /// Returns `f64::INFINITY` for a single image (no interval to measure).
    pub fn throughput_fps(&self, clock_mhz: f64) -> f64 {
        let interval = self.steady_interval().get();
        if interval == 0 {
            f64::INFINITY
        } else {
            clock_mhz * 1e6 / interval as f64
        }
    }
}

/// One executed task in a [`TaskTrace`]: which PE ran which task of which
/// image, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The PE (= layer) that executed the task.
    pub pe: usize,
    /// Index of the image the task belongs to (0 for single-image runs).
    pub image: usize,
    /// The task's tile coordinates.
    pub task: crate::taskgraph::TaskCoord,
    /// Cycle the task was issued.
    pub start: Cycles,
    /// Cycle the task completed.
    pub end: Cycles,
}

/// A complete execution trace: every task with its issue and completion
/// cycles, in completion order. Useful for Gantt-style visualisation and
/// for verifying reuse patterns (Fig. 4 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTrace {
    events: Vec<TraceEvent>,
}

impl TaskTrace {
    /// All events, ordered by completion cycle.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events executed by PE `pe`, in issue order.
    pub fn pe_events(&self, pe: usize) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self.events.iter().copied().filter(|e| e.pe == pe).collect();
        evs.sort_by_key(|e| e.start);
        evs
    }

    /// Renders a CSV with columns `pe,image,j,k,m,start,end` (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("pe,image,j,k,m,start,end\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                e.pe,
                e.image,
                e.task.j,
                e.task.k,
                e.task.m,
                e.start.get(),
                e.end.get()
            ));
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// PE `pe` finishes its current task (global task index attached).
    PeDone { pe: usize, task: usize },
    /// OFM tile `(k, m)` of image `img` becomes visible to `layer`.
    TileAvail {
        layer: usize,
        img: usize,
        k: usize,
        m: usize,
    },
    /// Image `img` arrives at the pipeline input.
    Arrival { img: usize },
}

struct PeState {
    /// Global task indices (image-major) not yet executed, in issue order.
    remaining: Vec<usize>,
    busy_until: u64,
    busy: u64,
    started: Option<u64>,
    finish: u64,
    idle: bool,
    idle_since: u64,
    stall: u64,
    stall_events: usize,
}

/// Simulates `schedule` on the pipeline of `graph` for a single image, with
/// `transfers[i]` cycles added before layer `i+1` can see an OFM tile of
/// layer `i`.
///
/// # Errors
///
/// * [`FpgaError::InvalidConfig`] if the schedule's PE count or task counts
///   disagree with the graph, or `transfers` has the wrong length;
/// * [`FpgaError::UnknownTask`] if a scheduled task is out of range;
/// * [`FpgaError::Deadlock`] if the schedule cannot complete.
pub fn simulate(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    transfers: &[Cycles],
) -> Result<SimReport> {
    Ok(simulate_traced(graph, schedule, transfers)?.0)
}

/// [`simulate`], additionally returning the full execution trace.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_traced(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    transfers: &[Cycles],
) -> Result<(SimReport, TaskTrace)> {
    let (stream, trace) = simulate_images(graph, schedule, transfers, 1, 0)?;
    Ok((
        SimReport {
            makespan: stream.makespan,
            latency: Millis::new(0.0),
            pes: stream.pes,
        },
        trace,
    ))
}

/// Streams `images` images through the pipeline, each arriving
/// `arrival_interval` cycles after the previous one (0 = a batch that is
/// entirely resident up front).
///
/// # Errors
///
/// See [`simulate`]; additionally rejects `images == 0`.
pub fn simulate_stream(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    transfers: &[Cycles],
    images: usize,
    arrival_interval: Cycles,
) -> Result<StreamReport> {
    Ok(simulate_images(graph, schedule, transfers, images, arrival_interval.get())?.0)
}

/// [`simulate_stream`] with transfers taken from `design` and per-image
/// latencies converted at the design clock.
///
/// # Errors
///
/// See [`simulate_stream`].
pub fn simulate_design_stream(
    design: &PipelineDesign,
    graph: &TileTaskGraph,
    schedule: &Schedule,
    images: usize,
    arrival_interval: Cycles,
) -> Result<StreamReport> {
    let transfers: Vec<Cycles> = (0..graph.num_layers().saturating_sub(1))
        .map(|i| design.boundary_transfer_cycles(i))
        .collect();
    simulate_stream(graph, schedule, &transfers, images, arrival_interval)
}

fn simulate_images(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    transfers: &[Cycles],
    images: usize,
    arrival_interval: u64,
) -> Result<(StreamReport, TaskTrace)> {
    validate(graph, schedule, transfers)?;
    if images == 0 {
        return Err(FpgaError::InvalidConfig {
            what: "streaming needs at least one image".to_string(),
        });
    }
    let layers = graph.num_layers();

    // ifm_wait[i][img][j * rc + m] flattened: producer OFM tiles (plus one
    // arrival pseudo-dependency for layer 0) still missing.
    let mut ifm_wait: Vec<Vec<usize>> = Vec::with_capacity(layers);
    // For each boundary (into layer i ≥ 1): producer tile k → consumer js.
    let mut dependents: Vec<Vec<Vec<usize>>> = Vec::with_capacity(layers);
    for i in 0..layers {
        let l = graph.layer(i);
        let per_image = l.ch_ifm * l.rc;
        let mut wait = vec![0usize; per_image * images];
        let mut deps: Vec<Vec<usize>> = Vec::new();
        if i == 0 {
            // Layer 0 inputs depend only on their image's arrival.
            for cell in wait.iter_mut() {
                *cell = 1;
            }
        } else {
            deps = vec![Vec::new(); graph.layer(i - 1).ch_ofm];
            for j in 0..l.ch_ifm {
                let range = graph
                    .ifm_prereqs(i, j)
                    .expect("layer > 0 always has prereqs");
                for img in 0..images {
                    for m in 0..l.rc {
                        wait[img * per_image + j * l.rc + m] = range.clone().count();
                    }
                }
                for k in range {
                    deps[k].push(j);
                }
            }
        }
        ifm_wait.push(wait);
        dependents.push(deps);
    }

    // ofm_left[i][img][k * rc + m] flattened.
    let mut ofm_left: Vec<Vec<usize>> = (0..layers)
        .map(|i| {
            let l = graph.layer(i);
            vec![graph.ofm_contributors(i); l.ch_ofm * l.rc * images]
        })
        .collect();

    let mut pes: Vec<PeState> = (0..layers)
        .map(|i| PeState {
            remaining: (0..schedule.order(i).len() * images).collect(),
            busy_until: 0,
            busy: 0,
            started: None,
            finish: 0,
            idle: true,
            idle_since: 0,
            stall: 0,
            stall_events: 0,
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut outstanding: usize = pes.iter().map(|p| p.remaining.len()).sum();
    let mut trace = TaskTrace::default();
    let mut per_image_finish = vec![0u64; images];

    // Dispatch helper: returns true if a task was issued.
    #[allow(clippy::too_many_arguments)] // internal helper mirroring sim state
    fn try_dispatch(
        pe_idx: usize,
        now: u64,
        graph: &TileTaskGraph,
        schedule: &Schedule,
        pes: &mut [PeState],
        ifm_wait: &[Vec<usize>],
        heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
        seq: &mut u64,
    ) -> bool {
        let l = graph.layer(pe_idx);
        let order = schedule.order(pe_idx);
        let per_image = l.ch_ifm * l.rc;
        let pe = &mut pes[pe_idx];
        if pe.busy_until > now || pe.remaining.is_empty() {
            return false;
        }
        let scan = if schedule.reorder_on_stall() {
            pe.remaining.len()
        } else {
            1
        };
        let mut pick = None;
        for (pos, &global) in pe.remaining.iter().take(scan).enumerate() {
            let img = global / order.len();
            let t = order[global % order.len()];
            if ifm_wait[pe_idx][img * per_image + t.j * l.rc + t.m] == 0 {
                pick = Some((pos, global));
                break;
            }
        }
        let Some((pos, global)) = pick else {
            if !pe.idle {
                pe.idle = true;
                pe.idle_since = now;
            }
            return false;
        };
        pe.remaining.remove(pos);
        if pe.started.is_none() {
            pe.started = Some(now);
        } else if pe.idle && now > pe.idle_since {
            pe.stall += now - pe.idle_since;
            pe.stall_events += 1;
        }
        pe.idle = false;
        let et = l.et.get();
        pe.busy_until = now + et;
        pe.busy += et;
        *seq += 1;
        heap.push(Reverse((
            now + et,
            *seq,
            Event::PeDone {
                pe: pe_idx,
                task: global,
            },
        )));
        true
    }

    // Arrivals unlock each image's layer-0 inputs.
    for img in 0..images {
        seq += 1;
        heap.push(Reverse((
            img as u64 * arrival_interval,
            seq,
            Event::Arrival { img },
        )));
    }

    let mut now = 0u64;
    while let Some(Reverse((t, _, event))) = heap.pop() {
        now = t;
        match event {
            Event::Arrival { img } => {
                let l = graph.layer(0);
                let per_image = l.ch_ifm * l.rc;
                for cell in ifm_wait[0][img * per_image..(img + 1) * per_image].iter_mut() {
                    *cell -= 1;
                }
                try_dispatch(
                    0, now, graph, schedule, &mut pes, &ifm_wait, &mut heap, &mut seq,
                );
            }
            Event::PeDone { pe, task } => {
                let order_len = schedule.order(pe).len();
                let img = task / order_len;
                let coord = schedule.order(pe)[task % order_len];
                outstanding -= 1;
                pes[pe].finish = now;
                let l = graph.layer(pe);
                trace.events.push(TraceEvent {
                    pe,
                    image: img,
                    task: coord,
                    start: Cycles::new(now - l.et.get()),
                    end: Cycles::new(now),
                });
                let per_image = l.ch_ofm * l.rc;
                let cell = img * per_image + coord.k * l.rc + coord.m;
                ofm_left[pe][cell] -= 1;
                if ofm_left[pe][cell] == 0 {
                    if pe + 1 < layers {
                        let avail = now + transfers[pe].get();
                        seq += 1;
                        heap.push(Reverse((
                            avail,
                            seq,
                            Event::TileAvail {
                                layer: pe + 1,
                                img,
                                k: coord.k,
                                m: coord.m,
                            },
                        )));
                    } else {
                        per_image_finish[img] = per_image_finish[img].max(now);
                    }
                }
                try_dispatch(
                    pe, now, graph, schedule, &mut pes, &ifm_wait, &mut heap, &mut seq,
                );
            }
            Event::TileAvail { layer, img, k, m } => {
                let l = graph.layer(layer);
                let per_image = l.ch_ifm * l.rc;
                let js = dependents[layer][k].clone();
                let mut unblocked = false;
                for j in js {
                    let cell = img * per_image + j * l.rc + m;
                    ifm_wait[layer][cell] -= 1;
                    if ifm_wait[layer][cell] == 0 {
                        unblocked = true;
                    }
                }
                if unblocked {
                    try_dispatch(
                        layer, now, graph, schedule, &mut pes, &ifm_wait, &mut heap, &mut seq,
                    );
                }
            }
        }
    }

    if outstanding > 0 {
        return Err(FpgaError::Deadlock {
            at_cycle: now,
            remaining: outstanding,
        });
    }

    let makespan = pes.iter().map(|p| p.finish).max().unwrap_or(0);
    let report_pes = pes
        .iter()
        .map(|p| PeStats {
            start: Cycles::new(p.started.unwrap_or(0)),
            finish: Cycles::new(p.finish),
            busy: Cycles::new(p.busy),
            stall: Cycles::new(p.stall),
            stall_events: p.stall_events,
        })
        .collect();
    Ok((
        StreamReport {
            makespan: Cycles::new(makespan),
            per_image_finish: per_image_finish.into_iter().map(Cycles::new).collect(),
            pes: report_pes,
        },
        trace,
    ))
}

/// [`simulate`] with transfer delays and clock taken from `design`.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_design(
    design: &PipelineDesign,
    graph: &TileTaskGraph,
    schedule: &Schedule,
) -> Result<SimReport> {
    let transfers: Vec<Cycles> = (0..graph.num_layers().saturating_sub(1))
        .map(|i| design.boundary_transfer_cycles(i))
        .collect();
    let mut report = simulate(graph, schedule, &transfers)?;
    report.latency = report.makespan.to_millis(design.clock_mhz());
    Ok(report)
}

fn validate(graph: &TileTaskGraph, schedule: &Schedule, transfers: &[Cycles]) -> Result<()> {
    if schedule.num_pes() != graph.num_layers() {
        return Err(FpgaError::InvalidConfig {
            what: format!(
                "schedule covers {} PEs but the graph has {} layers",
                schedule.num_pes(),
                graph.num_layers()
            ),
        });
    }
    if transfers.len() + 1 != graph.num_layers() && (graph.num_layers() != 0) {
        return Err(FpgaError::InvalidConfig {
            what: format!(
                "expected {} boundary transfer entries, got {}",
                graph.num_layers() - 1,
                transfers.len()
            ),
        });
    }
    for i in 0..graph.num_layers() {
        let l = graph.layer(i);
        if schedule.order(i).len() != l.task_count() {
            return Err(FpgaError::InvalidConfig {
                what: format!(
                    "PE {i} schedules {} tasks but layer has {}",
                    schedule.order(i).len(),
                    l.task_count()
                ),
            });
        }
        for (idx, t) in schedule.order(i).iter().enumerate() {
            if t.j >= l.ch_ifm || t.k >= l.ch_ofm || t.m >= l.rc {
                return Err(FpgaError::UnknownTask {
                    layer: i,
                    index: idx,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PipelineDesign;
    use crate::device::{FpgaCluster, FpgaDevice};
    use crate::layer::{ConvShape, Network};
    use crate::sched::{FixedScheduler, FnasScheduler};

    fn pipeline(filters: &[usize]) -> (PipelineDesign, TileTaskGraph) {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        let net = Network::new(layers).unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let g = TileTaskGraph::from_design(&d).unwrap();
        (d, g)
    }

    #[test]
    fn single_layer_runs_back_to_back() {
        let (d, g) = pipeline(&[8]);
        let s = FnasScheduler::new().schedule(&g);
        let r = simulate_design(&d, &g, &s).unwrap();
        let l = g.layer(0);
        // No dependencies ⇒ makespan = tasks × ET, zero stalls.
        assert_eq!(r.makespan.get(), l.task_count() as u64 * l.et.get());
        assert_eq!(r.total_stall().get(), 0);
        assert!(r.latency.get() > 0.0);
    }

    #[test]
    fn downstream_pe_starts_after_its_first_tile() {
        let (d, g) = pipeline(&[8, 8]);
        let s = FnasScheduler::new().schedule(&g);
        let r = simulate_design(&d, &g, &s).unwrap();
        assert!(r.pes[1].start > r.pes[0].start);
        assert!(r.makespan >= r.pes[1].finish);
    }

    #[test]
    fn busy_plus_stall_fits_between_start_and_finish() {
        let (d, g) = pipeline(&[16, 32, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let r = simulate_design(&d, &g, &s).unwrap();
        for pe in &r.pes {
            assert!(pe.busy.get() + pe.stall.get() <= pe.finish.get() - pe.start.get() + 1);
            assert!(pe.finish >= pe.start);
        }
    }

    #[test]
    fn fnas_schedule_never_loses_to_fixed() {
        for filters in [
            [64usize, 64, 64, 64],
            [64, 128, 64, 128],
            [128, 128, 128, 128],
        ] {
            let (d, g) = pipeline(&filters);
            let fnas = simulate_design(&d, &g, &FnasScheduler::new().schedule(&g)).unwrap();
            let fixed = simulate_design(&d, &g, &FixedScheduler::new().schedule(&g)).unwrap();
            assert!(
                fnas.makespan <= fixed.makespan,
                "{filters:?}: fnas {} > fixed {}",
                fnas.makespan,
                fixed.makespan
            );
        }
    }

    #[test]
    fn cross_device_transfer_delays_consumer_start() {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in &[16usize, 16] {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        let net = Network::new(layers).unwrap();
        // Slow link makes the boundary transfer visible.
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 0.5).unwrap();
        let d2 = PipelineDesign::generate_on_cluster(&net, &cluster).unwrap();
        let g2 = TileTaskGraph::from_design(&d2).unwrap();
        let d1 = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let g1 = TileTaskGraph::from_design(&d1).unwrap();
        // Compare start of PE 1 relative to its first-producing tile using
        // the same schedule kind.
        let r2 = simulate_design(&d2, &g2, &FnasScheduler::new().schedule(&g2)).unwrap();
        let r1 = simulate_design(&d1, &g1, &FnasScheduler::new().schedule(&g1)).unwrap();
        assert!(d2.boundary_transfer_cycles(0).get() > 0);
        assert_eq!(d1.boundary_transfer_cycles(0).get(), 0);
        // Both complete; the slow-link system cannot be faster in wall time
        // normalised per cycle budget... at minimum it must still finish.
        assert!(r2.makespan.get() >= r1.pes[1].start.get());
        let _ = r1;
    }

    #[test]
    fn schedule_graph_mismatch_is_rejected() {
        let (_, g1) = pipeline(&[8]);
        let (_, g2) = pipeline(&[8, 8]);
        let s2 = FnasScheduler::new().schedule(&g2);
        let err = simulate(&g1, &s2, &[]).unwrap_err();
        assert!(matches!(err, FpgaError::InvalidConfig { .. }));
    }

    #[test]
    fn wrong_transfer_count_is_rejected() {
        let (_, g) = pipeline(&[8, 8]);
        let s = FnasScheduler::new().schedule(&g);
        assert!(simulate(&g, &s, &[]).is_err());
        assert!(simulate(&g, &s, &[Cycles::new(0), Cycles::new(0)]).is_err());
        assert!(simulate(&g, &s, &[Cycles::new(0)]).is_ok());
    }

    #[test]
    fn reordering_stays_within_one_task_of_in_order() {
        // Greedy out-of-order dispatch fills idle cycles but may occupy the
        // PE for up to one task when the critical tile unblocks, so it is
        // not strictly dominant; it must never lose by more than the
        // largest per-task latency on the last PE's critical path.
        let (d, g) = pipeline(&[64, 128, 64, 128]);
        let with = simulate_design(&d, &g, &FnasScheduler::new().schedule(&g)).unwrap();
        let without = simulate_design(
            &d,
            &g,
            &FnasScheduler::new().without_reordering().schedule(&g),
        )
        .unwrap();
        let max_et = g.layers().iter().map(|l| l.et.get()).max().unwrap();
        let slack = max_et * g.num_layers() as u64;
        assert!(
            with.makespan.get() <= without.makespan.get() + slack,
            "reordered {} vs in-order {} (+{slack} slack)",
            with.makespan,
            without.makespan
        );
    }

    #[test]
    fn trace_covers_every_task_in_dependency_order() {
        let (_d, g) = pipeline(&[16, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let transfers: Vec<Cycles> = vec![Cycles::new(0)];
        let (report, trace) = simulate_traced(&g, &s, &transfers).unwrap();
        let total: usize = (0..g.num_layers()).map(|i| g.layer(i).task_count()).sum();
        assert_eq!(trace.events().len(), total);
        // Every event fits inside the makespan and lasts exactly ET.
        for e in trace.events() {
            assert!(e.end <= report.makespan);
            assert_eq!(e.end.get() - e.start.get(), g.layer(e.pe).et.get());
            assert_eq!(e.image, 0);
        }
        // Dependency order: every layer-1 task starts only after ALL of its
        // IFM tile's producer OFM tiles have completed.
        for e in trace.pe_events(1) {
            let range = g.ifm_prereqs(1, e.task.j).unwrap();
            for k in range {
                // The producing OFM tile (k, m) completes when its LAST
                // contributing task finishes.
                let done = trace
                    .pe_events(0)
                    .iter()
                    .filter(|p| p.task.k == k && p.task.m == e.task.m)
                    .map(|p| p.end)
                    .max()
                    .expect("producers exist");
                assert!(
                    done <= e.start,
                    "task {:?} started at {} before tile ({k},{}) at {}",
                    e.task,
                    e.start,
                    e.task.m,
                    done
                );
            }
        }
    }

    #[test]
    fn trace_csv_has_a_row_per_task() {
        let (_d, g) = pipeline(&[8]);
        let s = FnasScheduler::new().schedule(&g);
        let (_, trace) = simulate_traced(&g, &s, &[]).unwrap();
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 1 + g.layer(0).task_count());
        assert!(csv.starts_with("pe,image,j,k,m,start,end"));
    }

    #[test]
    fn every_pe_does_its_work() {
        let (d, g) = pipeline(&[16, 16, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let r = simulate_design(&d, &g, &s).unwrap();
        for (i, pe) in r.pes.iter().enumerate() {
            let l = g.layer(i);
            assert_eq!(pe.busy.get(), l.task_count() as u64 * l.et.get());
        }
    }

    // ---- streaming -----------------------------------------------------

    #[test]
    fn single_image_stream_matches_simulate() {
        let (d, g) = pipeline(&[16, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let single = simulate_design(&d, &g, &s).unwrap();
        let stream = simulate_design_stream(&d, &g, &s, 1, Cycles::new(0)).unwrap();
        assert_eq!(stream.makespan, single.makespan);
        assert_eq!(stream.per_image_finish.len(), 1);
        assert_eq!(stream.first_latency(), single.makespan);
        assert_eq!(stream.steady_interval().get(), 0);
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let (d, g) = pipeline(&[16, 32, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let single = simulate_design(&d, &g, &s).unwrap();
        let images = 6;
        let stream = simulate_design_stream(&d, &g, &s, images, Cycles::new(0)).unwrap();
        // Image-level pipelining overlaps images across PEs, so the stream
        // finishes well before `images × single-image latency`.
        assert!(
            stream.makespan.get() < images as u64 * single.makespan.get(),
            "stream {} vs serial {}",
            stream.makespan,
            images as u64 * single.makespan.get()
        );
        // Completion times are per image and non-decreasing.
        assert_eq!(stream.per_image_finish.len(), images);
        for pair in stream.per_image_finish.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        // The steady-state interval is at least the bottleneck PE's busy
        // time per image (it can never beat the slowest stage).
        let bottleneck = g
            .layers()
            .iter()
            .map(|l| l.task_count() as u64 * l.et.get())
            .max()
            .unwrap();
        assert!(stream.steady_interval().get() + 1 >= bottleneck / 2);
        assert!(stream.throughput_fps(d.clock_mhz()) > 0.0);
    }

    #[test]
    fn paced_arrivals_space_out_completions() {
        let (d, g) = pipeline(&[8, 8]);
        let s = FnasScheduler::new().schedule(&g);
        let batch = simulate_design_stream(&d, &g, &s, 4, Cycles::new(0)).unwrap();
        // Arrivals slower than the pipeline interval dominate the spacing.
        let slow = Cycles::new(batch.steady_interval().get() * 4 + 1000);
        let paced = simulate_design_stream(&d, &g, &s, 4, slow).unwrap();
        assert!(paced.steady_interval() >= batch.steady_interval());
        assert!(paced.makespan > batch.makespan);
        assert!((paced.steady_interval().get() as i64 - slow.get() as i64).abs() <= 1);
    }

    #[test]
    fn zero_images_is_rejected() {
        let (_, g) = pipeline(&[8]);
        let s = FnasScheduler::new().schedule(&g);
        assert!(simulate_stream(&g, &s, &[], 0, Cycles::new(0)).is_err());
    }

    #[test]
    fn stream_trace_labels_images() {
        let (_, g) = pipeline(&[8]);
        let s = FnasScheduler::new().schedule(&g);
        let (_, trace) = simulate_images(&g, &s, &[], 3, 0).unwrap();
        let per_image = g.layer(0).task_count();
        assert_eq!(trace.events().len(), 3 * per_image);
        for img in 0..3 {
            assert_eq!(
                trace.events().iter().filter(|e| e.image == img).count(),
                per_image
            );
        }
    }
}
