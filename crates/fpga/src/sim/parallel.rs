//! Partitioned parallel simulation backend.
//!
//! The single-threaded simulator in [`super`] processes a global event heap
//! ordered by `(time, push-sequence)`. This module decomposes that loop by
//! PE: the task graph is strictly feed-forward (layer `i` depends only on
//! layer `i − 1`), so each PE's state is touched only by its own
//! completions and by tile-availability messages from its predecessor, and
//! a per-PE event loop that merges those two streams reproduces the global
//! heap order exactly — see the determinism argument below. Contiguous PE
//! regions (a [`PartitionedGraph`]) then run concurrently on
//! [`fnas_exec::Executor`] threads, with cross-region availability streams
//! settled through blocking FIFO queues in producer push order.
//!
//! # Determinism
//!
//! The global heap breaks time ties by push sequence. A `PeDone` at time
//! `t` was pushed when its task dispatched, at `t − ET`; a `TileAvail` at
//! time `t` was pushed when the producer tile completed, at `t − transfer`.
//! Per PE, completions are strictly increasing in time (each dispatch
//! advances `busy_until` by `ET ≥ 1`) and so are incoming availability
//! times (producer completions strictly increase and the boundary transfer
//! is constant), so at any instant a PE faces at most one completion and
//! one availability. The tie is resolved by comparing push times: the
//! completion wins exactly when `t − ET < t − transfer`. The one ambiguous
//! case — equal push times, which would need the predecessor's own
//! intra-instant ordering — can only arise on a boundary where
//! `transfer == consumer ET` with `transfer > 0`; that condition is
//! detected statically and the simulation falls back to the global heap,
//! so the parallel backend is byte-identical to [`super::simulate`]
//! everywhere it runs (and equal even there, via the fallback).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use fnas_exec::Executor;

use crate::design::PipelineDesign;
use crate::passes::partition::PartitionedGraph;
use crate::sched::Schedule;
use crate::taskgraph::{TaskCoord, TileTaskGraph};
use crate::{Cycles, FpgaError, Millis, Result};

use super::{PeStats, SimReport};

/// Work accounting of one partitioned simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Regions the run actually used (1 when a fallback path ran the
    /// global heap simulator).
    pub partitions_built: u64,
    /// Tile-availability messages settled through cross-region queues.
    pub cross_partition_events: u64,
}

/// A tile-availability message crossing a PE boundary.
#[derive(Debug, Clone, Copy)]
struct AvailMsg {
    /// Cycle the tile becomes visible to the consumer.
    time: u64,
    k: usize,
    m: usize,
}

struct QueueState {
    msgs: VecDeque<AvailMsg>,
    closed: bool,
}

/// Single-producer single-consumer FIFO for one cross-region boundary.
/// Messages arrive in strictly increasing `time` order (producer
/// completions strictly increase, the transfer is constant), so the
/// consumer can merge the stream against its own completions by peeking
/// at the head.
struct BoundaryQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl BoundaryQueue {
    fn new() -> Self {
        BoundaryQueue {
            state: Mutex::new(QueueState {
                msgs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, msg: AvailMsg) {
        let mut state = self.state.lock().expect("boundary queue poisoned");
        state.msgs.push_back(msg);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("boundary queue poisoned");
        state.closed = true;
        self.ready.notify_all();
    }

    /// Blocks until a message is available or the producer closed the
    /// queue; `None` means the stream is exhausted.
    fn peek_time(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("boundary queue poisoned");
        while state.msgs.is_empty() && !state.closed {
            state = self.ready.wait(state).expect("boundary queue poisoned");
        }
        state.msgs.front().map(|m| m.time)
    }

    fn pop(&self) -> Option<AvailMsg> {
        let mut state = self.state.lock().expect("boundary queue poisoned");
        state.msgs.pop_front()
    }
}

/// Closes the region's outgoing queue even if the region panics, so a
/// blocked downstream consumer can terminate and the executor can join.
struct CloseOnDrop<'a>(Option<&'a BoundaryQueue>);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        if let Some(queue) = self.0 {
            queue.close();
        }
    }
}

/// Where a PE's incoming availability stream comes from.
enum AvailSource<'a> {
    /// Pipeline input: layer 0 has no producer.
    Input,
    /// Producer ran earlier in the same region; its stream is materialised.
    Local { msgs: Vec<AvailMsg>, pos: usize },
    /// Producer runs concurrently in the previous region.
    Shared(&'a BoundaryQueue),
}

impl AvailSource<'_> {
    fn peek_time(&mut self) -> Option<u64> {
        match self {
            AvailSource::Input => None,
            AvailSource::Local { msgs, pos } => msgs.get(*pos).map(|m| m.time),
            AvailSource::Shared(queue) => queue.peek_time(),
        }
    }

    fn pop(&mut self) -> AvailMsg {
        match self {
            AvailSource::Input => unreachable!("pipeline input has no availability stream"),
            AvailSource::Local { msgs, pos } => {
                let msg = msgs[*pos];
                *pos += 1;
                msg
            }
            AvailSource::Shared(queue) => queue.pop().expect("peek_time saw a message"),
        }
    }
}

/// Where a PE's outgoing availability stream goes.
enum AvailSink<'a> {
    /// Pipeline output: the last layer has no consumer.
    Terminal,
    /// Consumer runs later in the same region; materialise the stream.
    Local(Vec<AvailMsg>),
    /// Consumer runs concurrently in the next region.
    Shared {
        queue: &'a BoundaryQueue,
        pushed: u64,
    },
}

impl AvailSink<'_> {
    fn push(&mut self, msg: AvailMsg) {
        match self {
            AvailSink::Terminal => {}
            AvailSink::Local(msgs) => msgs.push(msg),
            AvailSink::Shared { queue, pushed } => {
                queue.push(msg);
                *pushed += 1;
            }
        }
    }
}

/// Raw outcome of one PE's local event loop.
struct PeRaw {
    started: Option<u64>,
    finish: u64,
    busy: u64,
    stall: u64,
    stall_events: usize,
    /// Tasks the loop could not dispatch (non-zero only on deadlock).
    leftover: usize,
}

/// One PE's slice of the global simulator state, advanced by a local event
/// loop that mirrors the global `try_dispatch` accounting exactly.
struct LocalPe<'a> {
    order: &'a [TaskCoord],
    rc: usize,
    et: u64,
    reorder: bool,
    remaining: Vec<usize>,
    ifm_wait: Vec<usize>,
    /// Producer OFM channel `k` → consumer IFM channels `j` (empty for
    /// layer 0).
    dependents: Vec<Vec<usize>>,
    ofm_left: Vec<usize>,
    /// Own completions not yet processed, in increasing time order (at
    /// most two deep: a completion at `now` and one at `now + ET`).
    pending: VecDeque<(u64, usize)>,
    busy_until: u64,
    busy: u64,
    started: Option<u64>,
    finish: u64,
    idle: bool,
    idle_since: u64,
    stall: u64,
    stall_events: usize,
}

impl LocalPe<'_> {
    /// Mirrors the global simulator's dispatch helper byte for byte.
    fn try_dispatch(&mut self, now: u64) -> bool {
        if self.busy_until > now || self.remaining.is_empty() {
            return false;
        }
        let scan = if self.reorder {
            self.remaining.len()
        } else {
            1
        };
        let mut pick = None;
        for (pos, &global) in self.remaining.iter().take(scan).enumerate() {
            let t = self.order[global];
            if self.ifm_wait[t.j * self.rc + t.m] == 0 {
                pick = Some((pos, global));
                break;
            }
        }
        let Some((pos, global)) = pick else {
            if !self.idle {
                self.idle = true;
                self.idle_since = now;
            }
            return false;
        };
        self.remaining.remove(pos);
        if self.started.is_none() {
            self.started = Some(now);
        } else if self.idle && now > self.idle_since {
            self.stall += now - self.idle_since;
            self.stall_events += 1;
        }
        self.idle = false;
        self.busy_until = now + self.et;
        self.busy += self.et;
        self.pending.push_back((now + self.et, global));
        true
    }
}

/// Runs PE `pe_idx`'s local event loop to completion.
#[allow(clippy::too_many_arguments)] // internal helper mirroring sim state
fn run_pe(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    pe_idx: usize,
    transfer_in: u64,
    transfer_out: u64,
    mut source: AvailSource<'_>,
    sink: &mut AvailSink<'_>,
) -> PeRaw {
    let l = graph.layer(pe_idx);
    let rc = l.rc;
    let order = schedule.order(pe_idx);

    let mut ifm_wait = vec![0usize; l.ch_ifm * rc];
    let mut dependents: Vec<Vec<usize>> = Vec::new();
    if pe_idx > 0 {
        dependents = vec![Vec::new(); graph.layer(pe_idx - 1).ch_ofm];
        for j in 0..l.ch_ifm {
            let range = graph
                .ifm_prereqs(pe_idx, j)
                .expect("layer > 0 always has prereqs");
            for cell in ifm_wait[j * rc..(j + 1) * rc].iter_mut() {
                *cell = range.clone().count();
            }
            for k in range {
                dependents[k].push(j);
            }
        }
    }

    let mut pe = LocalPe {
        order,
        rc,
        et: l.et.get(),
        reorder: schedule.reorder_on_stall(),
        remaining: (0..order.len()).collect(),
        ifm_wait,
        dependents,
        ofm_left: vec![graph.ofm_contributors(pe_idx); l.ch_ofm * rc],
        pending: VecDeque::new(),
        busy_until: 0,
        busy: 0,
        started: None,
        finish: 0,
        idle: true,
        idle_since: 0,
        stall: 0,
        stall_events: 0,
    };

    let last_layer = pe_idx + 1 == graph.num_layers();
    if pe_idx == 0 {
        // The image arrival at cycle 0 unlocks every layer-0 input.
        pe.try_dispatch(0);
    }

    loop {
        let done_t = pe.pending.front().map(|&(t, _)| t);
        let avail_t = source.peek_time();
        let take_done = match (done_t, avail_t) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Same instant: earlier push wins, and push times are
            // `t − ET` (completion) vs `t − transfer` (availability).
            // Equality is excluded by the static ambiguity check.
            (Some(d), Some(a)) => d < a || (d == a && d - pe.et <= a - transfer_in),
        };
        if take_done {
            let (now, global) = pe.pending.pop_front().expect("done_t peeked an entry");
            pe.finish = now;
            let coord = pe.order[global];
            let cell = coord.k * rc + coord.m;
            pe.ofm_left[cell] -= 1;
            if pe.ofm_left[cell] == 0 && !last_layer {
                sink.push(AvailMsg {
                    time: now + transfer_out,
                    k: coord.k,
                    m: coord.m,
                });
            }
            pe.try_dispatch(now);
        } else {
            let msg = source.pop();
            let mut unblocked = false;
            for &j in &pe.dependents[msg.k] {
                let cell = j * rc + msg.m;
                pe.ifm_wait[cell] -= 1;
                if pe.ifm_wait[cell] == 0 {
                    unblocked = true;
                }
            }
            if unblocked {
                pe.try_dispatch(msg.time);
            }
        }
    }

    PeRaw {
        started: pe.started,
        finish: pe.finish,
        busy: pe.busy,
        stall: pe.stall,
        stall_events: pe.stall_events,
        leftover: pe.remaining.len(),
    }
}

/// [`super::simulate`] on the partitioned parallel backend: regions of
/// `partitions` run concurrently on `executor` threads, settling
/// cross-region tile availability in a fixed deterministic order.
///
/// Byte-identical to [`super::simulate`] for every input (pinned by test);
/// falls back to the global heap simulator when the tie-break would be
/// ambiguous (a boundary with `transfer == consumer ET > 0`) or the graph
/// is empty.
///
/// # Errors
///
/// Exactly the errors of [`super::simulate`], including the same
/// [`FpgaError::Deadlock`] payload when the schedule cannot complete.
pub fn simulate_partitioned(
    graph: &TileTaskGraph,
    schedule: &Schedule,
    transfers: &[Cycles],
    partitions: &PartitionedGraph,
    executor: &Executor,
) -> Result<(SimReport, PartitionStats)> {
    super::validate(graph, schedule, transfers)?;
    let layers = graph.num_layers();
    if partitions.num_layers() != layers {
        return Err(FpgaError::InvalidConfig {
            what: format!(
                "partitioning covers {} layers but the graph has {layers}",
                partitions.num_layers()
            ),
        });
    }
    let fallback = |stats: PartitionStats| -> Result<(SimReport, PartitionStats)> {
        Ok((super::simulate(graph, schedule, transfers)?, stats))
    };
    let single = PartitionStats {
        partitions_built: 1,
        cross_partition_events: 0,
    };
    if layers == 0 {
        return fallback(single);
    }
    let ambiguous = (0..layers - 1).any(|i| {
        let t = transfers[i].get();
        t != 0 && t == graph.layer(i + 1).et.get()
    });
    if ambiguous {
        return fallback(single);
    }

    let regions = partitions.regions();
    let nregions = regions.len();
    let queues: Vec<BoundaryQueue> = (0..nregions.saturating_sub(1))
        .map(|_| BoundaryQueue::new())
        .collect();
    let cross = AtomicU64::new(0);
    let region_indices: Vec<usize> = (0..nregions).collect();

    let raws: Vec<Vec<PeRaw>> = executor.map(&region_indices, |_, &r| {
        let range = regions[r].clone();
        let out_queue = queues.get(r).filter(|_| r + 1 < nregions);
        let _close_guard = CloseOnDrop(out_queue);
        let mut results = Vec::with_capacity(range.len());
        let mut carry: Vec<AvailMsg> = Vec::new();
        for pe in range.clone() {
            let source = if pe == 0 {
                AvailSource::Input
            } else if pe == range.start {
                AvailSource::Shared(&queues[r - 1])
            } else {
                AvailSource::Local {
                    msgs: std::mem::take(&mut carry),
                    pos: 0,
                }
            };
            let last_layer = pe + 1 == layers;
            let mut sink = if last_layer {
                AvailSink::Terminal
            } else if pe + 1 == range.end {
                AvailSink::Shared {
                    queue: &queues[r],
                    pushed: 0,
                }
            } else {
                AvailSink::Local(Vec::new())
            };
            let transfer_in = if pe == 0 { 0 } else { transfers[pe - 1].get() };
            let transfer_out = if last_layer { 0 } else { transfers[pe].get() };
            let raw = run_pe(
                graph,
                schedule,
                pe,
                transfer_in,
                transfer_out,
                source,
                &mut sink,
            );
            match sink {
                AvailSink::Local(msgs) => carry = msgs,
                AvailSink::Shared { queue, pushed } => {
                    queue.close();
                    cross.fetch_add(pushed, Ordering::Relaxed);
                }
                AvailSink::Terminal => {}
            }
            results.push(raw);
        }
        results
    });

    let raw_pes: Vec<PeRaw> = raws.into_iter().flatten().collect();
    if raw_pes.iter().any(|p| p.leftover > 0) {
        // The schedule deadlocked; rerun the global simulator so the error
        // payload (at_cycle, remaining) is byte-identical.
        return fallback(single);
    }

    let makespan = raw_pes.iter().map(|p| p.finish).max().unwrap_or(0);
    let pes = raw_pes
        .iter()
        .map(|p| PeStats {
            start: Cycles::new(p.started.unwrap_or(0)),
            finish: Cycles::new(p.finish),
            busy: Cycles::new(p.busy),
            stall: Cycles::new(p.stall),
            stall_events: p.stall_events,
        })
        .collect();
    Ok((
        SimReport {
            makespan: Cycles::new(makespan),
            latency: Millis::new(0.0),
            pes,
        },
        PartitionStats {
            partitions_built: nregions as u64,
            cross_partition_events: cross.load(Ordering::Relaxed),
        },
    ))
}

/// [`simulate_partitioned`] with transfer delays and clock taken from
/// `design` — the partitioned counterpart of [`super::simulate_design`].
///
/// # Errors
///
/// See [`simulate_partitioned`].
pub fn simulate_design_partitioned(
    design: &PipelineDesign,
    graph: &TileTaskGraph,
    schedule: &Schedule,
    partitions: &PartitionedGraph,
    executor: &Executor,
) -> Result<(SimReport, PartitionStats)> {
    let transfers: Vec<Cycles> = (0..graph.num_layers().saturating_sub(1))
        .map(|i| design.boundary_transfer_cycles(i))
        .collect();
    let (mut report, stats) =
        simulate_partitioned(graph, schedule, transfers.as_slice(), partitions, executor)?;
    report.latency = report.makespan.to_millis(design.clock_mhz());
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{FpgaCluster, FpgaDevice};
    use crate::layer::{ConvShape, Network};
    use crate::sched::{FixedScheduler, FnasScheduler};
    use crate::sim::simulate;

    fn pipeline(filters: &[usize]) -> (PipelineDesign, TileTaskGraph) {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in filters {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        let net = Network::new(layers).unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        let g = TileTaskGraph::from_design(&d).unwrap();
        (d, g)
    }

    #[test]
    fn partitioned_sim_is_byte_identical_to_single_threaded() {
        for filters in [
            vec![8usize],
            vec![16, 16],
            vec![16, 32, 16],
            vec![64, 128, 64, 128],
        ] {
            let (d, g) = pipeline(&filters);
            for schedule in [
                FnasScheduler::new().schedule(&g),
                FixedScheduler::new().schedule(&g),
            ] {
                let reference = crate::sim::simulate_design(&d, &g, &schedule).unwrap();
                for parts in [1usize, 2, 4, 8] {
                    let p = PartitionedGraph::build(&g, parts);
                    for workers in [0usize, 1, 2, 8] {
                        let executor = Executor::with_workers(workers);
                        let (report, stats) =
                            simulate_design_partitioned(&d, &g, &schedule, &p, &executor).unwrap();
                        assert_eq!(
                            report, reference,
                            "{filters:?} parts={parts} workers={workers}"
                        );
                        assert_eq!(stats.partitions_built, p.num_regions() as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn multi_device_transfers_stay_byte_identical() {
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in &[16usize, 16, 32, 16] {
            layers.push(ConvShape::square(prev, f, 16, 3).unwrap());
            prev = f;
        }
        let net = Network::new(layers).unwrap();
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 2, 0.5).unwrap();
        let d = PipelineDesign::generate_on_cluster(&net, &cluster).unwrap();
        let g = TileTaskGraph::from_design(&d).unwrap();
        assert!((0..g.num_layers() - 1).any(|i| d.boundary_transfer_cycles(i).get() > 0));
        let s = FnasScheduler::new().schedule(&g);
        let reference = crate::sim::simulate_design(&d, &g, &s).unwrap();
        for parts in [2usize, 3, 8] {
            let p = PartitionedGraph::build(&g, parts);
            let executor = Executor::with_workers(4);
            let (report, _) = simulate_design_partitioned(&d, &g, &s, &p, &executor).unwrap();
            assert_eq!(report, reference, "parts={parts}");
        }
    }

    #[test]
    fn cross_partition_events_match_the_cut_traffic() {
        let (_, g) = pipeline(&[16, 32, 16]);
        let s = FnasScheduler::new().schedule(&g);
        let transfers = vec![Cycles::new(0); g.num_layers() - 1];
        let p = PartitionedGraph::build(&g, 3);
        assert_eq!(p.num_regions(), 3);
        let executor = Executor::with_workers(3);
        let (_, stats) = simulate_partitioned(&g, &s, &transfers, &p, &executor).unwrap();
        assert_eq!(stats.partitions_built, 3);
        assert_eq!(stats.cross_partition_events, p.total_cross_traffic());
    }

    #[test]
    fn ambiguous_boundary_falls_back_to_the_global_simulator() {
        let (_, g) = pipeline(&[8, 8]);
        let s = FnasScheduler::new().schedule(&g);
        // transfer == consumer ET makes the push-time tie-break ambiguous.
        let transfers = vec![Cycles::new(g.layer(1).et.get())];
        let p = PartitionedGraph::build(&g, 2);
        let executor = Executor::with_workers(2);
        let (report, stats) = simulate_partitioned(&g, &s, &transfers, &p, &executor).unwrap();
        assert_eq!(stats.partitions_built, 1);
        assert_eq!(stats.cross_partition_events, 0);
        assert_eq!(report, simulate(&g, &s, &transfers).unwrap());
    }

    #[test]
    fn mismatched_partitioning_is_rejected() {
        let (_, g2) = pipeline(&[8, 8]);
        let (_, g3) = pipeline(&[8, 8, 8]);
        let s = FnasScheduler::new().schedule(&g2);
        let p3 = PartitionedGraph::build(&g3, 2);
        let transfers = vec![Cycles::new(0)];
        let executor = Executor::sequential();
        let err = simulate_partitioned(&g2, &s, &transfers, &p3, &executor).unwrap_err();
        assert!(matches!(err, FpgaError::InvalidConfig { .. }));
    }
}
