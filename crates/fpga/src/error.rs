use std::error::Error;
use std::fmt;

/// Errors produced by the FPGA design, scheduling and analysis pipeline.
///
/// # Examples
///
/// ```
/// use fnas_fpga::layer::ConvShape;
///
/// let err = ConvShape::new(0, 8, 8, 8, 3, 3).unwrap_err();
/// assert!(err.to_string().contains("non-zero"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// A workload or design parameter is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        what: String,
    },
    /// The workload cannot fit on the given device(s).
    InsufficientResources {
        /// What ran out (DSP slices, BRAM, devices, …).
        resource: &'static str,
        /// How much the design needs.
        needed: u64,
        /// How much the platform offers.
        available: u64,
    },
    /// A schedule references a task or tile that the graph does not contain.
    UnknownTask {
        /// Layer index of the dangling reference.
        layer: usize,
        /// Flat task index of the dangling reference.
        index: usize,
    },
    /// The simulator detected a schedule that can never complete
    /// (circular waiting or missing producers).
    Deadlock {
        /// Simulation time at which no progress was possible.
        at_cycle: u64,
        /// Number of tasks still outstanding.
        remaining: usize,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            FpgaError::InsufficientResources {
                resource,
                needed,
                available,
            } => write!(
                f,
                "insufficient {resource}: need {needed}, have {available}"
            ),
            FpgaError::UnknownTask { layer, index } => {
                write!(
                    f,
                    "schedule references unknown task {index} in layer {layer}"
                )
            }
            FpgaError::Deadlock {
                at_cycle,
                remaining,
            } => write!(
                f,
                "schedule deadlocked at cycle {at_cycle} with {remaining} tasks outstanding"
            ),
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FpgaError>();
    }

    #[test]
    fn messages_carry_numbers() {
        let e = FpgaError::InsufficientResources {
            resource: "DSP slices",
            needed: 500,
            available: 220,
        };
        let s = e.to_string();
        assert!(s.contains("500") && s.contains("220"));
    }

    #[test]
    fn deadlock_message() {
        let e = FpgaError::Deadlock {
            at_cycle: 42,
            remaining: 3,
        };
        assert!(e.to_string().contains("42"));
    }
}
