//! **FNAS-Sched** (component ➂) and the fixed-scheduling baseline.
//!
//! A schedule fixes, for every PE (= layer), the order in which its tasks
//! are issued. FNAS-Sched follows the paper's three steps:
//!
//! 1. **IFM tile order** — channel-tile indices increase before row/col
//!    indices (strategy i of §3.5), so the next layer's first input tile
//!    completes as early as possible;
//! 2. **OFM tile order** — derived from the IFM order;
//! 3. **task order** — alternating data-reuse strategies per layer:
//!    even layers use *OFM reuse* (all input tiles of one output tile are
//!    processed consecutively: `j` innermost), odd layers use *IFM reuse*
//!    (one input tile serves all its output tiles: `k` innermost). A
//!    ready-to-run queue lets the PE execute any ready task when the
//!    nominal next task is blocked (principle P3).
//!
//! The *fixed scheduling* baseline (Zhang et al. \[13\], Fig. 5(a)) issues
//! every layer in the rigid nested-loop order `row/col → OFM tile → IFM
//! tile` — i.e. uniform OFM reuse — and the PE blocks whenever the next
//! task in that order is not ready.

use crate::taskgraph::{TaskCoord, TileTaskGraph};

/// Which tile the consecutive tasks of a layer keep resident (§3.5 step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseStrategy {
    /// Consecutive tasks share the OFM tile (`j` varies fastest):
    /// accumulates one output tile to completion before moving on.
    OfmReuse,
    /// Consecutive tasks share the IFM tile (`k` varies fastest): one input
    /// tile is reused across all output tiles it feeds.
    IfmReuse,
}

/// A complete schedule: an ordered task list per PE plus the stall policy.
///
/// # Examples
///
/// ```
/// use fnas_fpga::design::PipelineDesign;
/// use fnas_fpga::device::FpgaDevice;
/// use fnas_fpga::layer::{ConvShape, Network};
/// use fnas_fpga::sched::{FnasScheduler, Schedule};
/// use fnas_fpga::taskgraph::TileTaskGraph;
///
/// # fn main() -> Result<(), fnas_fpga::FpgaError> {
/// let net = Network::new(vec![ConvShape::square(3, 8, 8, 3)?])?;
/// let design = PipelineDesign::generate(&net, &FpgaDevice::pynq())?;
/// let graph = TileTaskGraph::from_design(&design)?;
/// let schedule = FnasScheduler::new().schedule(&graph);
/// assert_eq!(schedule.order(0).len(), graph.layer(0).task_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    per_pe: Vec<Vec<TaskCoord>>,
    reuse: Vec<ReuseStrategy>,
    reorder_on_stall: bool,
    name: &'static str,
}

impl Schedule {
    /// The ordered task list of PE `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn order(&self, pe: usize) -> &[TaskCoord] {
        &self.per_pe[pe]
    }

    /// Number of PEs covered by the schedule.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// The reuse strategy assigned to each layer.
    pub fn reuse_strategies(&self) -> &[ReuseStrategy] {
        &self.reuse
    }

    /// Whether a PE may execute a later *ready* task while the nominal next
    /// task is blocked (FNAS's ready-to-run queue, P3).
    pub fn reorder_on_stall(&self) -> bool {
        self.reorder_on_stall
    }

    /// Human-readable scheduler name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Whether a layer completes all channel tiles of one row/col tile before
/// moving to the next (strategy i of §3.5 step 1) or the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpatialOrder {
    /// Channel-tile indices increase first (the paper's choice): all
    /// channel work of spatial tile `m` finishes before tile `m + 1`.
    #[default]
    ChannelFirst,
    /// Row/col indices increase first (strategy ii, kept for the ablation
    /// bench): every channel pair visits all spatial tiles before moving on.
    RowColFirst,
}

/// Enumerates one layer's tasks in the order dictated by a reuse strategy
/// and spatial ordering (§3.5 steps 1–3).
fn layer_order(
    ch_ifm: usize,
    ch_ofm: usize,
    rc: usize,
    reuse: ReuseStrategy,
    spatial: SpatialOrder,
) -> Vec<TaskCoord> {
    let mut order = Vec::with_capacity(ch_ifm * ch_ofm * rc);
    let mut channel_pairs = Vec::with_capacity(ch_ifm * ch_ofm);
    match reuse {
        ReuseStrategy::OfmReuse => {
            for k in 0..ch_ofm {
                for j in 0..ch_ifm {
                    channel_pairs.push((j, k));
                }
            }
        }
        ReuseStrategy::IfmReuse => {
            for j in 0..ch_ifm {
                for k in 0..ch_ofm {
                    channel_pairs.push((j, k));
                }
            }
        }
    }
    match spatial {
        SpatialOrder::ChannelFirst => {
            for m in 0..rc {
                for &(j, k) in &channel_pairs {
                    order.push(TaskCoord { j, k, m });
                }
            }
        }
        SpatialOrder::RowColFirst => {
            for &(j, k) in &channel_pairs {
                for m in 0..rc {
                    order.push(TaskCoord { j, k, m });
                }
            }
        }
    }
    order
}

/// The FNAS scheduler: alternating reuse + ready-queue reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnasScheduler {
    /// When `true` (the default), even layers use OFM reuse; flip to start
    /// with IFM reuse instead (useful for ablations).
    start_with_ofm: bool,
    /// Ready-queue reordering (P3); on by default.
    reorder_on_stall: bool,
    /// When set, every layer uses the same strategy instead of alternating
    /// (the configuration §3.5 warns against; exposed for the ablation
    /// bench).
    uniform: Option<ReuseStrategy>,
    /// Spatial ordering (channel-first per the paper; row/col-first for the
    /// ablation bench).
    spatial: SpatialOrder,
}

impl Default for FnasScheduler {
    fn default() -> Self {
        FnasScheduler::new()
    }
}

impl FnasScheduler {
    /// The paper's configuration: alternate OFM/IFM reuse starting with OFM,
    /// ready-queue on.
    pub fn new() -> Self {
        FnasScheduler {
            start_with_ofm: true,
            reorder_on_stall: true,
            uniform: None,
            spatial: SpatialOrder::ChannelFirst,
        }
    }

    /// Ablation: uniform reuse for all layers (keeps the ready queue).
    #[must_use]
    pub fn with_uniform_reuse(mut self, reuse: ReuseStrategy) -> Self {
        self.uniform = Some(reuse);
        self
    }

    /// Ablation: disable the ready-to-run queue.
    #[must_use]
    pub fn without_reordering(mut self) -> Self {
        self.reorder_on_stall = false;
        self
    }

    /// Ablation: start the alternation with IFM reuse.
    #[must_use]
    pub fn starting_with_ifm(mut self) -> Self {
        self.start_with_ofm = false;
        self
    }

    /// Ablation: order row/col tiles first (strategy ii of §3.5 step 1,
    /// which the paper argues delays the next layer's start).
    #[must_use]
    pub fn with_rowcol_first(mut self) -> Self {
        self.spatial = SpatialOrder::RowColFirst;
        self
    }

    /// Builds the schedule for `graph`.
    pub fn schedule(&self, graph: &TileTaskGraph) -> Schedule {
        let mut per_pe = Vec::with_capacity(graph.num_layers());
        let mut reuse = Vec::with_capacity(graph.num_layers());
        for (i, layer) in graph.layers().iter().enumerate() {
            let strategy = match self.uniform {
                Some(u) => u,
                None => {
                    let even = i % 2 == 0;
                    if even == self.start_with_ofm {
                        ReuseStrategy::OfmReuse
                    } else {
                        ReuseStrategy::IfmReuse
                    }
                }
            };
            per_pe.push(layer_order(
                layer.ch_ifm,
                layer.ch_ofm,
                layer.rc,
                strategy,
                self.spatial,
            ));
            reuse.push(strategy);
        }
        Schedule {
            per_pe,
            reuse,
            reorder_on_stall: self.reorder_on_stall,
            name: "fnas-sched",
        }
    }
}

/// The fixed-scheduling baseline of \[13\]: uniform OFM reuse, strict order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedScheduler;

impl FixedScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        FixedScheduler
    }

    /// Builds the rigid nested-loop schedule for `graph`.
    pub fn schedule(&self, graph: &TileTaskGraph) -> Schedule {
        let per_pe = graph
            .layers()
            .iter()
            .map(|l| {
                layer_order(
                    l.ch_ifm,
                    l.ch_ofm,
                    l.rc,
                    ReuseStrategy::OfmReuse,
                    SpatialOrder::ChannelFirst,
                )
            })
            .collect();
        Schedule {
            reuse: vec![ReuseStrategy::OfmReuse; graph.num_layers()],
            per_pe,
            reorder_on_stall: false,
            name: "fixed-sched",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PipelineDesign;
    use crate::device::FpgaDevice;
    use crate::layer::{ConvShape, Network};

    fn graph2() -> TileTaskGraph {
        let net = Network::new(vec![
            ConvShape::square(6, 6, 8, 3).unwrap(),
            ConvShape::square(6, 6, 8, 3).unwrap(),
        ])
        .unwrap();
        let d = PipelineDesign::generate(&net, &FpgaDevice::pynq()).unwrap();
        TileTaskGraph::from_design(&d).unwrap()
    }

    #[test]
    fn fnas_covers_every_task_exactly_once() {
        let g = graph2();
        let s = FnasScheduler::new().schedule(&g);
        for pe in 0..g.num_layers() {
            let l = g.layer(pe);
            let mut seen = std::collections::HashSet::new();
            for t in s.order(pe) {
                assert!(t.j < l.ch_ifm && t.k < l.ch_ofm && t.m < l.rc);
                assert!(seen.insert((t.j, t.k, t.m)), "duplicate task {t:?}");
            }
            assert_eq!(seen.len(), l.task_count());
        }
    }

    #[test]
    fn fnas_alternates_reuse_strategies() {
        let g = graph2();
        let s = FnasScheduler::new().schedule(&g);
        assert_eq!(
            s.reuse_strategies(),
            &[ReuseStrategy::OfmReuse, ReuseStrategy::IfmReuse]
        );
        assert!(s.reorder_on_stall());
        assert_eq!(s.name(), "fnas-sched");
        let flipped = FnasScheduler::new().starting_with_ifm().schedule(&g);
        assert_eq!(
            flipped.reuse_strategies(),
            &[ReuseStrategy::IfmReuse, ReuseStrategy::OfmReuse]
        );
    }

    #[test]
    fn fixed_is_uniform_ofm_without_reordering() {
        let g = graph2();
        let s = FixedScheduler::new().schedule(&g);
        assert!(s
            .reuse_strategies()
            .iter()
            .all(|&r| r == ReuseStrategy::OfmReuse));
        assert!(!s.reorder_on_stall());
        assert_eq!(s.name(), "fixed-sched");
    }

    #[test]
    fn ofm_reuse_keeps_output_tile_resident() {
        let order = layer_order(3, 2, 2, ReuseStrategy::OfmReuse, SpatialOrder::ChannelFirst);
        // Within a run of ch_ifm consecutive tasks, (k, m) is constant.
        for chunk in order.chunks(3) {
            assert!(chunk.iter().all(|t| t.k == chunk[0].k && t.m == chunk[0].m));
        }
    }

    #[test]
    fn ifm_reuse_keeps_input_tile_resident() {
        let order = layer_order(3, 2, 2, ReuseStrategy::IfmReuse, SpatialOrder::ChannelFirst);
        for chunk in order.chunks(2) {
            assert!(chunk.iter().all(|t| t.j == chunk[0].j && t.m == chunk[0].m));
        }
    }

    #[test]
    fn channel_tiles_vary_before_rowcol_tiles() {
        // Channel-tile-first (step 1): all tasks of spatial tile m=0 precede
        // any task of m=1.
        for reuse in [ReuseStrategy::OfmReuse, ReuseStrategy::IfmReuse] {
            let order = layer_order(2, 2, 3, reuse, SpatialOrder::ChannelFirst);
            let first_m1 = order.iter().position(|t| t.m == 1).unwrap();
            assert!(order[..first_m1].iter().all(|t| t.m == 0));
            assert_eq!(first_m1, 4);
        }
    }

    #[test]
    fn rowcol_first_visits_all_spatial_tiles_per_channel_pair() {
        let order = layer_order(2, 2, 3, ReuseStrategy::OfmReuse, SpatialOrder::RowColFirst);
        // The first rc entries share one channel pair and sweep m.
        assert!(order[..3]
            .iter()
            .all(|t| t.j == order[0].j && t.k == order[0].k));
        assert_eq!(order[0].m, 0);
        assert_eq!(order[2].m, 2);
    }

    #[test]
    fn uniform_ablation_applies_one_strategy_everywhere() {
        let g = graph2();
        let s = FnasScheduler::new()
            .with_uniform_reuse(ReuseStrategy::IfmReuse)
            .schedule(&g);
        assert!(s
            .reuse_strategies()
            .iter()
            .all(|&r| r == ReuseStrategy::IfmReuse));
        let s2 = FnasScheduler::new().without_reordering().schedule(&g);
        assert!(!s2.reorder_on_stall());
    }
}
