use std::error::Error;
use std::fmt;

use fnas_nn::NnError;

/// Errors produced while configuring or generating synthetic datasets.
///
/// # Examples
///
/// ```
/// use fnas_data::{SynthConfig, SynthDataset};
///
/// let bad = SynthConfig::mnist_like().with_classes(0);
/// assert!(SynthDataset::generate(&bad).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A configuration value is invalid (zero classes, empty shape, …).
    InvalidConfig {
        /// Human-readable description of the problem.
        what: String,
    },
    /// Batch assembly failed in the training substrate.
    Nn(NnError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { what } => write!(f, "invalid dataset config: {what}"),
            DataError::Nn(e) => write!(f, "batch assembly failed: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DataError {
    fn from(e: NnError) -> Self {
        DataError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }

    #[test]
    fn nn_error_keeps_source() {
        let err: DataError = NnError::InvalidConfig {
            what: "x".to_string(),
        }
        .into();
        assert!(err.source().is_some());
    }
}
