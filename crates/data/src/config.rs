/// Which procedural pattern family class prototypes are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PatternKind {
    /// Smooth sums of random plane waves (the default): translation-
    /// sensitive, band-limited textures.
    #[default]
    Waves,
    /// Sums of random Gaussian blobs: localised features, closer in spirit
    /// to object-centric images.
    Blobs,
}

/// Configuration of a synthetic classification problem.
///
/// Presets mirror the three corpora of the FNAS paper (Table 2): the tensor
/// shapes match the real datasets, and the default split sizes match the
/// paper's counts. Production-scale sizes are expensive to train on a single
/// CPU core, so [`SynthConfig::with_sizes`] (or
/// [`SynthConfig::scaled`]) shrinks a preset while keeping its shape and
/// difficulty.
///
/// # Examples
///
/// ```
/// use fnas_data::SynthConfig;
///
/// let c = SynthConfig::cifar_like().scaled(0.01);
/// assert_eq!(c.shape(), (3, 32, 32));
/// assert_eq!(c.train_size(), 450);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    name: String,
    channels: usize,
    height: usize,
    width: usize,
    classes: usize,
    train_size: usize,
    val_size: usize,
    noise: f32,
    max_shift: usize,
    seed: u64,
    pattern: PatternKind,
}

impl SynthConfig {
    /// A generic configuration; prefer the named presets.
    pub fn new(
        name: impl Into<String>,
        shape: (usize, usize, usize),
        classes: usize,
        train_size: usize,
        val_size: usize,
    ) -> Self {
        SynthConfig {
            name: name.into(),
            channels: shape.0,
            height: shape.1,
            width: shape.2,
            classes,
            train_size,
            val_size,
            noise: 0.3,
            max_shift: 2,
            seed: 0xF9A5,
            pattern: PatternKind::default(),
        }
    }

    /// MNIST-like: `1 × 28 × 28`, 10 classes, 60 000 / 10 000 split
    /// (Table 2 of the paper).
    pub fn mnist_like() -> Self {
        let mut c = SynthConfig::new("mnist-like", (1, 28, 28), 10, 60_000, 10_000);
        c.noise = 0.25;
        c
    }

    /// CIFAR-10-like: `3 × 32 × 32`, 10 classes, 45 000 / 5 000 split.
    pub fn cifar_like() -> Self {
        let mut c = SynthConfig::new("cifar-like", (3, 32, 32), 10, 45_000, 5_000);
        c.noise = 0.45;
        c
    }

    /// Reduced-ImageNet-like: `3 × 48 × 48`, 20 classes, 4 500 / 500 split
    /// (the paper itself uses a reduced ImageNet of 4 500 / 500 examples;
    /// 48×48 images and 20 classes keep the synthetic stand-in tractable
    /// and its ImageNet-space children inside the Table 2 timing budgets,
    /// see DESIGN.md §2).
    pub fn imagenet_like() -> Self {
        let mut c = SynthConfig::new("imagenet-like", (3, 48, 48), 20, 4_500, 500);
        c.noise = 0.6;
        c.max_shift = 4;
        c
    }

    /// Replaces the split sizes.
    #[must_use]
    pub fn with_sizes(mut self, train: usize, val: usize) -> Self {
        self.train_size = train;
        self.val_size = val;
        self
    }

    /// Multiplies both split sizes by `fraction` (flooring, min 1 each).
    #[must_use]
    pub fn scaled(self, fraction: f64) -> Self {
        let train = ((self.train_size as f64 * fraction) as usize).max(1);
        let val = ((self.val_size as f64 * fraction) as usize).max(1);
        self.with_sizes(train, val)
    }

    /// Replaces the class count.
    #[must_use]
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Replaces the per-pixel Gaussian noise level (σ); higher is harder.
    #[must_use]
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the maximum translation jitter in pixels.
    #[must_use]
    pub fn with_max_shift(mut self, max_shift: usize) -> Self {
        self.max_shift = max_shift;
        self
    }

    /// Replaces the generation seed (prototypes *and* samples derive from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the pattern family prototypes are drawn from.
    #[must_use]
    pub fn with_pattern(mut self, pattern: PatternKind) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replaces the image shape `(channels, height, width)`.
    #[must_use]
    pub fn with_shape(mut self, shape: (usize, usize, usize)) -> Self {
        self.channels = shape.0;
        self.height = shape.1;
        self.width = shape.2;
        self
    }

    /// Human-readable preset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Image shape `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of training examples.
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Number of validation examples.
    pub fn val_size(&self) -> usize {
        self.val_size
    }

    /// Per-pixel Gaussian noise σ.
    pub fn noise(&self) -> f32 {
        self.noise
    }

    /// Maximum translation jitter in pixels.
    pub fn max_shift(&self) -> usize {
        self.max_shift
    }

    /// Generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pattern family.
    pub fn pattern(&self) -> PatternKind {
        self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2_sizes() {
        let m = SynthConfig::mnist_like();
        assert_eq!((m.train_size(), m.val_size()), (60_000, 10_000));
        let c = SynthConfig::cifar_like();
        assert_eq!((c.train_size(), c.val_size()), (45_000, 5_000));
        let i = SynthConfig::imagenet_like();
        assert_eq!((i.train_size(), i.val_size()), (4_500, 500));
    }

    #[test]
    fn preset_shapes_match_the_real_corpora() {
        assert_eq!(SynthConfig::mnist_like().shape(), (1, 28, 28));
        assert_eq!(SynthConfig::cifar_like().shape(), (3, 32, 32));
        assert_eq!(SynthConfig::imagenet_like().shape(), (3, 48, 48));
    }

    #[test]
    fn scaled_floors_but_never_zeroes() {
        let c = SynthConfig::mnist_like().scaled(0.0001);
        assert_eq!(c.train_size(), 6);
        assert_eq!(c.val_size(), 1);
        let tiny = SynthConfig::imagenet_like().scaled(1e-9);
        assert_eq!(tiny.train_size(), 1);
    }

    #[test]
    fn builders_replace_fields() {
        let c = SynthConfig::mnist_like()
            .with_classes(4)
            .with_noise(0.9)
            .with_max_shift(5)
            .with_seed(77)
            .with_shape((2, 8, 8));
        assert_eq!(c.classes(), 4);
        assert_eq!(c.noise(), 0.9);
        assert_eq!(c.max_shift(), 5);
        assert_eq!(c.seed(), 77);
        assert_eq!(c.shape(), (2, 8, 8));
        assert_eq!(c.name(), "mnist-like");
        assert_eq!(c.pattern(), PatternKind::Waves);
        assert_eq!(
            c.with_pattern(PatternKind::Blobs).pattern(),
            PatternKind::Blobs
        );
    }
}
