//! Procedural sample generation.

use fnas_nn::train::Batch;
use fnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DataError, PatternKind, Result, SynthConfig};

/// Number of sinusoidal components per class prototype.
const PROTO_WAVES: usize = 4;
/// Number of Gaussian blobs per class prototype.
const PROTO_BLOBS: usize = 5;

/// One split (train or validation) of a generated dataset.
///
/// Examples are stored as one flat `Vec<f32>` in NCHW order with parallel
/// labels, and materialised into [`Batch`]es on demand.
#[derive(Debug, Clone)]
pub struct Split {
    data: Vec<f32>,
    labels: Vec<usize>,
    channels: usize,
    height: usize,
    width: usize,
}

impl Split {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the split holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-example shape `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Labels of all examples, in order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Materialises the split into batches of at most `batch_size` examples
    /// (the final batch may be smaller).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> Result<Vec<Batch>> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                what: "batch size must be non-zero".to_string(),
            });
        }
        let example = self.channels * self.height * self.width;
        let mut out = Vec::with_capacity(self.len().div_ceil(batch_size));
        let mut start = 0usize;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            let n = end - start;
            let images = Tensor::from_vec(
                self.data[start * example..end * example].to_vec(),
                &[n, self.channels, self.height, self.width][..],
            )
            .map_err(fnas_nn::NnError::from)?;
            out.push(Batch::new(images, self.labels[start..end].to_vec())?);
            start = end;
        }
        Ok(out)
    }

    /// A single example as a `[1, c, h, w]` tensor plus its label, or `None`
    /// when out of range.
    pub fn example(&self, index: usize) -> Option<(Tensor, usize)> {
        if index >= self.len() {
            return None;
        }
        let example = self.channels * self.height * self.width;
        let image = Tensor::from_vec(
            self.data[index * example..(index + 1) * example].to_vec(),
            &[1, self.channels, self.height, self.width][..],
        )
        .expect("slice length matches shape");
        Some((image, self.labels[index]))
    }
}

/// A generated dataset: train and validation splits drawn from the same
/// class prototypes.
///
/// # Examples
///
/// ```
/// use fnas_data::{SynthConfig, SynthDataset};
///
/// # fn main() -> Result<(), fnas_data::DataError> {
/// let dataset = SynthDataset::generate(
///     &SynthConfig::mnist_like().with_sizes(32, 16),
/// )?;
/// assert_eq!(dataset.config().classes(), 10);
/// assert_eq!(dataset.val().len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SynthDataset {
    config: SynthConfig,
    train: Split,
    val: Split,
}

impl SynthDataset {
    /// Generates a dataset according to `config`.
    ///
    /// Deterministic in `config.seed()`: the same configuration always
    /// produces identical splits.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero classes, an empty image
    /// shape, or a zero-sized training split.
    pub fn generate(config: &SynthConfig) -> Result<Self> {
        let (c, h, w) = config.shape();
        if config.classes() == 0 {
            return Err(DataError::InvalidConfig {
                what: "at least one class is required".to_string(),
            });
        }
        if c == 0 || h == 0 || w == 0 {
            return Err(DataError::InvalidConfig {
                what: format!("image shape must be non-empty, got ({c}, {h}, {w})"),
            });
        }
        if config.train_size() == 0 {
            return Err(DataError::InvalidConfig {
                what: "training split must be non-empty".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed());
        let prototypes = Prototypes::generate(config, &mut rng);
        let train = generate_split(config, &prototypes, config.train_size(), &mut rng);
        let val = generate_split(config, &prototypes, config.val_size(), &mut rng);
        Ok(SynthDataset {
            config: config.clone(),
            train,
            val,
        })
    }

    /// The configuration this dataset was generated from.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The training split.
    pub fn train(&self) -> &Split {
        &self.train
    }

    /// The validation split.
    pub fn val(&self) -> &Split {
        &self.val
    }
}

/// Per-class smooth prototype patterns.
#[derive(Debug)]
struct Prototypes {
    /// `classes × (c·h·w)` prototype pixels.
    pixels: Vec<Vec<f32>>,
}

impl Prototypes {
    fn generate(config: &SynthConfig, rng: &mut StdRng) -> Self {
        let mut pixels = Vec::with_capacity(config.classes());
        for _ in 0..config.classes() {
            let proto = match config.pattern() {
                PatternKind::Waves => Prototypes::waves(config, rng),
                PatternKind::Blobs => Prototypes::blobs(config, rng),
            };
            pixels.push(proto);
        }
        Prototypes { pixels }
    }

    /// A smooth sum of random plane waves per channel: translation-
    /// sensitive, band-limited, class-distinctive.
    fn waves(config: &SynthConfig, rng: &mut StdRng) -> Vec<f32> {
        let (c, h, w) = config.shape();
        {
            let mut proto = vec![0.0f32; c * h * w];
            for ch in 0..c {
                let mut waves = Vec::with_capacity(PROTO_WAVES);
                for _ in 0..PROTO_WAVES {
                    let fx: f32 = rng.gen_range(0.5..3.0);
                    let fy: f32 = rng.gen_range(0.5..3.0);
                    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                    let amp: f32 = rng.gen_range(0.3..1.0);
                    waves.push((fx, fy, phase, amp));
                }
                for r in 0..h {
                    for col in 0..w {
                        let mut v = 0.0f32;
                        for &(fx, fy, phase, amp) in &waves {
                            let x = col as f32 / w as f32;
                            let y = r as f32 / h as f32;
                            v += amp * (std::f32::consts::TAU * (fx * x + fy * y) + phase).sin();
                        }
                        proto[ch * h * w + r * w + col] = v / PROTO_WAVES as f32;
                    }
                }
            }
            proto
        }
    }

    /// A sum of random Gaussian blobs per channel: localised features.
    fn blobs(config: &SynthConfig, rng: &mut StdRng) -> Vec<f32> {
        let (c, h, w) = config.shape();
        let mut proto = vec![0.0f32; c * h * w];
        for ch in 0..c {
            let blobs: Vec<(f32, f32, f32, f32)> = (0..PROTO_BLOBS)
                .map(|_| {
                    (
                        rng.gen_range(0.0..w as f32),
                        rng.gen_range(0.0..h as f32),
                        rng.gen_range(
                            (w.min(h) as f32 / 8.0).max(0.5)..(w.min(h) as f32 / 3.0).max(1.0),
                        ),
                        rng.gen_range(-1.0f32..1.0),
                    )
                })
                .collect();
            for r in 0..h {
                for col in 0..w {
                    let mut v = 0.0f32;
                    for &(cx, cy, sigma, amp) in &blobs {
                        let dx = col as f32 - cx;
                        let dy = r as f32 - cy;
                        v += amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                    }
                    proto[ch * h * w + r * w + col] = v;
                }
            }
        }
        proto
    }
}

fn generate_split(
    config: &SynthConfig,
    prototypes: &Prototypes,
    count: usize,
    rng: &mut StdRng,
) -> Split {
    let (c, h, w) = config.shape();
    let example = c * h * w;
    let mut data = vec![0.0f32; count * example];
    let mut labels = Vec::with_capacity(count);
    let shift = config.max_shift() as isize;
    for i in 0..count {
        let class = i % config.classes();
        labels.push(class);
        let proto = &prototypes.pixels[class];
        let dx: isize = if shift > 0 {
            rng.gen_range(-shift..=shift)
        } else {
            0
        };
        let dy: isize = if shift > 0 {
            rng.gen_range(-shift..=shift)
        } else {
            0
        };
        let out = &mut data[i * example..(i + 1) * example];
        for ch in 0..c {
            for r in 0..h {
                // Toroidal shift keeps energy constant across jitters.
                let sr = (r as isize + dy).rem_euclid(h as isize) as usize;
                for col in 0..w {
                    let sc = (col as isize + dx).rem_euclid(w as isize) as usize;
                    out[ch * h * w + r * w + col] = proto[ch * h * w + sr * w + sc];
                }
            }
        }
        if config.noise() > 0.0 {
            for v in out.iter_mut() {
                // Box–Muller; one sample per pixel is fine here.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                *v += config.noise() * n;
            }
        }
    }
    Split {
        data,
        labels,
        channels: c,
        height: h,
        width: w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthConfig {
        SynthConfig::mnist_like()
            .with_shape((1, 8, 8))
            .with_classes(3)
            .with_sizes(30, 12)
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = SynthDataset::generate(&tiny()).unwrap();
        let b = SynthDataset::generate(&tiny()).unwrap();
        assert_eq!(a.train().data, b.train().data);
        let c = SynthDataset::generate(&tiny().with_seed(123)).unwrap();
        assert_ne!(a.train().data, c.train().data);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SynthDataset::generate(&tiny()).unwrap();
        assert_eq!(&d.train().labels()[..6], &[0, 1, 2, 0, 1, 2]);
        assert_eq!(d.train().len(), 30);
        assert_eq!(d.val().len(), 12);
    }

    #[test]
    fn batches_cover_every_example_once() {
        let d = SynthDataset::generate(&tiny()).unwrap();
        let batches = d.train().batches(7).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 30);
        assert_eq!(batches.len(), 5);
        assert_eq!(batches.last().unwrap().len(), 2);
        assert!(d.train().batches(0).is_err());
    }

    #[test]
    fn example_accessor_matches_batches() {
        let d = SynthDataset::generate(&tiny()).unwrap();
        let (img, label) = d.val().example(3).unwrap();
        assert_eq!(img.shape().dims(), &[1, 1, 8, 8]);
        assert_eq!(label, d.val().labels()[3]);
        assert!(d.val().example(99).is_none());
    }

    #[test]
    fn same_class_examples_correlate_more_than_cross_class() {
        let d = SynthDataset::generate(&tiny().with_noise(0.05).with_max_shift(0)).unwrap();
        let (a0, _) = d.train().example(0).unwrap(); // class 0
        let (b0, _) = d.train().example(3).unwrap(); // class 0
        let (c1, _) = d.train().example(1).unwrap(); // class 1
        let same = a0.dot(&b0).unwrap() / (a0.norm_sq().sqrt() * b0.norm_sq().sqrt());
        let diff = a0.dot(&c1).unwrap() / (a0.norm_sq().sqrt() * c1.norm_sq().sqrt());
        assert!(
            same > diff + 0.2,
            "same-class correlation {same} should exceed cross-class {diff}"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SynthDataset::generate(&tiny().with_classes(0)).is_err());
        assert!(SynthDataset::generate(&tiny().with_shape((0, 8, 8))).is_err());
        assert!(SynthDataset::generate(&tiny().with_sizes(0, 4)).is_err());
    }

    #[test]
    fn noise_increases_sample_variance() {
        let clean = SynthDataset::generate(&tiny().with_noise(0.0)).unwrap();
        let noisy = SynthDataset::generate(&tiny().with_noise(1.0)).unwrap();
        // Same class, same seed ⇒ same prototype; compare two samples of the
        // same class within each set.
        let var = |s: &Split| {
            let (a, _) = s.example(0).unwrap();
            let (b, _) = s.example(3).unwrap();
            a.sub(&b).unwrap().norm_sq()
        };
        assert!(var(noisy.train()) > var(clean.train()));
    }

    #[test]
    fn blob_prototypes_differ_from_waves_and_stay_class_separable() {
        use crate::PatternKind;
        let waves = SynthDataset::generate(&tiny()).unwrap();
        let blobs = SynthDataset::generate(&tiny().with_pattern(PatternKind::Blobs)).unwrap();
        assert_ne!(waves.train().data, blobs.train().data);
        // Same-class correlation still beats cross-class for blobs.
        let d = SynthDataset::generate(
            &tiny()
                .with_pattern(PatternKind::Blobs)
                .with_noise(0.05)
                .with_max_shift(0),
        )
        .unwrap();
        let (a0, _) = d.train().example(0).unwrap();
        let (b0, _) = d.train().example(3).unwrap();
        let (c1, _) = d.train().example(1).unwrap();
        let same = a0.dot(&b0).unwrap() / (a0.norm_sq().sqrt() * b0.norm_sq().sqrt());
        let diff = a0.dot(&c1).unwrap() / (a0.norm_sq().sqrt() * c1.norm_sq().sqrt());
        assert!(same > diff + 0.2, "same {same} vs cross {diff}");
    }

    #[test]
    fn a_small_cnn_can_learn_the_problem() {
        use fnas_nn::layer::LayerSpec;
        use fnas_nn::model::Sequential;
        use fnas_nn::optim::Sgd;
        use fnas_nn::train::train;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let config = tiny().with_noise(0.1).with_sizes(60, 30);
        let d = SynthDataset::generate(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::build(
            (1, 8, 8),
            &[
                LayerSpec::conv(8, 3),
                LayerSpec::relu(),
                LayerSpec::global_avg_pool(),
                LayerSpec::dense(3),
            ],
            &mut rng,
        )
        .unwrap();
        let report = train(
            &mut model,
            &mut Sgd::new(0.3, 0.9),
            &d.train().batches(10).unwrap(),
            &d.val().batches(10).unwrap(),
            12,
        )
        .unwrap();
        assert!(
            report.reward_accuracy(5) > 0.6,
            "synthetic problem should be learnable, got {}",
            report.reward_accuracy(5)
        );
    }
}
