//! Synthetic image-classification datasets for the FNAS reproduction.
//!
//! The FNAS paper evaluates on MNIST, CIFAR-10 and a reduced ImageNet. Those
//! corpora are not available in this environment, so this crate generates
//! *procedural* classification problems with the same tensor shapes and a
//! controllable difficulty: each class is a smooth random prototype pattern
//! (a sum of seeded sinusoids), and each example is its class prototype under
//! a random translation plus Gaussian pixel noise. The NAS search loop only
//! ever consumes the scalar accuracy a trained child network achieves, so
//! any dataset with tunable class structure exercises the identical
//! train → validate → reward path (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use fnas_data::{SynthConfig, SynthDataset};
//!
//! # fn main() -> Result<(), fnas_data::DataError> {
//! let config = SynthConfig::mnist_like().with_sizes(64, 32);
//! let dataset = SynthDataset::generate(&config)?;
//! assert_eq!(dataset.train().len(), 64);
//! let batches = dataset.train().batches(16)?;
//! assert_eq!(batches.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod synth;

pub use config::{PatternKind, SynthConfig};
pub use error::DataError;
pub use synth::{Split, SynthDataset};

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, DataError>;
