//! Search spaces (Table 2 of the paper).
//!
//! A child network has `L` convolutional layers; for each layer the
//! controller picks a *filter size* and a *number of filters* from small
//! menus, giving `2·L` sequential decisions.

use crate::{ControllerError, Result};

/// Whether a decision step selects a filter size or a filter count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Pick the convolution kernel extent for the current layer.
    FilterSize,
    /// Pick the number of filters (output channels) for the current layer.
    FilterCount,
}

/// A NAS search space: layer count and the per-layer option menus.
///
/// # Examples
///
/// ```
/// use fnas_controller::space::SearchSpace;
///
/// let space = SearchSpace::mnist();
/// assert_eq!(space.layers(), 4);
/// assert_eq!(space.num_decisions(), 8);
/// assert_eq!(space.cardinality(), 9u128.pow(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    layers: usize,
    filter_sizes: Vec<usize>,
    filter_counts: Vec<usize>,
}

impl SearchSpace {
    /// Creates a search space.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::InvalidConfig`] for zero layers, empty
    /// menus, or zero-valued options.
    pub fn new(layers: usize, filter_sizes: Vec<usize>, filter_counts: Vec<usize>) -> Result<Self> {
        if layers == 0 {
            return Err(ControllerError::InvalidConfig {
                what: "search space needs at least one layer".to_string(),
            });
        }
        if filter_sizes.is_empty() || filter_counts.is_empty() {
            return Err(ControllerError::InvalidConfig {
                what: "option menus must be non-empty".to_string(),
            });
        }
        if filter_sizes.iter().chain(&filter_counts).any(|&v| v == 0) {
            return Err(ControllerError::InvalidConfig {
                what: "options must be non-zero".to_string(),
            });
        }
        Ok(SearchSpace {
            layers,
            filter_sizes,
            filter_counts,
        })
    }

    /// Table 2, MNIST row: `L = 4`, filter sizes `{5, 7, 14}`, filter
    /// counts `{9, 18, 36}`.
    pub fn mnist() -> Self {
        SearchSpace::new(4, vec![5, 7, 14], vec![9, 18, 36]).expect("preset is valid")
    }

    /// Table 2, CIFAR-10 row: `L = 10`, filter sizes `{1, 3, 5, 7}`, filter
    /// counts `{24, 36, 48, 64}`.
    pub fn cifar10() -> Self {
        SearchSpace::new(10, vec![1, 3, 5, 7], vec![24, 36, 48, 64]).expect("preset is valid")
    }

    /// Table 2, ImageNet row: `L = 15`, filter sizes `{1, 3, 5, 7}`, filter
    /// counts `{16, 32, 64, 128}`.
    pub fn imagenet() -> Self {
        SearchSpace::new(15, vec![1, 3, 5, 7], vec![16, 32, 64, 128]).expect("preset is valid")
    }

    /// Number of convolutional layers `L`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The filter-size menu.
    pub fn filter_sizes(&self) -> &[usize] {
        &self.filter_sizes
    }

    /// The filter-count menu.
    pub fn filter_counts(&self) -> &[usize] {
        &self.filter_counts
    }

    /// Total sequential decisions: `2·L` (size then count, per layer).
    pub fn num_decisions(&self) -> usize {
        2 * self.layers
    }

    /// Which menu decision step `t` draws from.
    ///
    /// Even steps pick the filter size, odd steps the filter count — the
    /// order the controller of \[16\] emits them in.
    pub fn decision_kind(&self, step: usize) -> DecisionKind {
        if step.is_multiple_of(2) {
            DecisionKind::FilterSize
        } else {
            DecisionKind::FilterCount
        }
    }

    /// The option menu for decision step `t`.
    pub fn options(&self, step: usize) -> &[usize] {
        match self.decision_kind(step) {
            DecisionKind::FilterSize => &self.filter_sizes,
            DecisionKind::FilterCount => &self.filter_counts,
        }
    }

    /// Number of distinct architectures in the space.
    pub fn cardinality(&self) -> u128 {
        let per_layer = (self.filter_sizes.len() * self.filter_counts.len()) as u128;
        per_layer.pow(self.layers as u32)
    }

    /// The widest option menu (sizing the policy's output heads).
    pub fn max_options(&self) -> usize {
        self.filter_sizes.len().max(self.filter_counts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2() {
        let m = SearchSpace::mnist();
        assert_eq!(m.layers(), 4);
        assert_eq!(m.filter_sizes(), &[5, 7, 14]);
        assert_eq!(m.filter_counts(), &[9, 18, 36]);

        let c = SearchSpace::cifar10();
        assert_eq!(c.layers(), 10);
        assert_eq!(c.filter_sizes(), &[1, 3, 5, 7]);
        assert_eq!(c.filter_counts(), &[24, 36, 48, 64]);

        let i = SearchSpace::imagenet();
        assert_eq!(i.layers(), 15);
        assert_eq!(i.filter_counts(), &[16, 32, 64, 128]);
    }

    #[test]
    fn decisions_alternate_size_then_count() {
        let s = SearchSpace::mnist();
        assert_eq!(s.decision_kind(0), DecisionKind::FilterSize);
        assert_eq!(s.decision_kind(1), DecisionKind::FilterCount);
        assert_eq!(s.decision_kind(6), DecisionKind::FilterSize);
        assert_eq!(s.options(0), s.filter_sizes());
        assert_eq!(s.options(3), s.filter_counts());
    }

    #[test]
    fn cardinality_counts_architectures() {
        assert_eq!(SearchSpace::mnist().cardinality(), 9u128.pow(4));
        assert_eq!(SearchSpace::cifar10().cardinality(), 16u128.pow(10));
    }

    #[test]
    fn invalid_spaces_rejected() {
        assert!(SearchSpace::new(0, vec![3], vec![8]).is_err());
        assert!(SearchSpace::new(2, vec![], vec![8]).is_err());
        assert!(SearchSpace::new(2, vec![3], vec![]).is_err());
        assert!(SearchSpace::new(2, vec![0], vec![8]).is_err());
    }

    #[test]
    fn max_options_sizes_heads() {
        assert_eq!(SearchSpace::mnist().max_options(), 3);
        assert_eq!(SearchSpace::cifar10().max_options(), 4);
        let lop = SearchSpace::new(1, vec![1, 3, 5, 7, 9], vec![2]).unwrap();
        assert_eq!(lop.max_options(), 5);
    }
}
