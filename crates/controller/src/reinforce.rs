//! The REINFORCE trainer tying policy, sampling and updates together.
//!
//! FNAS feeds the controller the reward of Eq. (1) — which already contains
//! the exponential-moving-average accuracy baseline `b` — so the trainer
//! treats the incoming value as the *advantage* directly. For plain NAS
//! usage the trainer can also maintain its own EMA baseline.

use fnas_nn::optim::{Adam, AdamState};
use rand::RngCore;

use crate::arch::ChildArch;
use crate::rnn::{Episode, PolicyRnn};
use crate::space::SearchSpace;
use crate::{ControllerError, Result};

/// Default controller learning rate.
pub const DEFAULT_LR: f32 = 0.02;

/// A sampled architecture together with its policy episode.
#[derive(Debug, Clone)]
pub struct ArchSample {
    arch: ChildArch,
    episode: Episode,
}

impl ArchSample {
    /// The decoded child architecture.
    pub fn arch(&self) -> &ChildArch {
        &self.arch
    }

    /// The underlying policy episode.
    pub fn episode(&self) -> &Episode {
        &self.episode
    }
}

/// A plain-data snapshot of a [`ReinforceTrainer`]'s mutable state —
/// policy parameters, optimiser moments and the update counter — for
/// checkpointing a search mid-run. Restoring it into a trainer built from
/// the same search space and hyper-parameters resumes training
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainerState {
    /// Flat policy parameters in [`PolicyRnn::export_params`] order.
    pub params: Vec<f32>,
    /// Adam optimiser state (time step and moment buffers).
    pub optimizer: AdamState,
    /// Gradient updates applied so far.
    pub updates: u64,
}

/// Policy-gradient trainer for the NAS controller.
///
/// # Examples
///
/// ```
/// use fnas_controller::reinforce::ReinforceTrainer;
/// use fnas_controller::space::SearchSpace;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fnas_controller::ControllerError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut trainer = ReinforceTrainer::new(&SearchSpace::mnist(), &mut rng)?;
/// let sample = trainer.sample(&mut rng)?;
/// trainer.update(&sample, 0.8)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReinforceTrainer {
    policy: PolicyRnn,
    optimizer: Adam,
    updates: usize,
}

impl ReinforceTrainer {
    /// Creates a trainer with a fresh policy and the default learning rate.
    ///
    /// # Errors
    ///
    /// Propagates policy construction errors.
    pub fn new(space: &SearchSpace, rng: &mut dyn RngCore) -> Result<Self> {
        Ok(ReinforceTrainer {
            policy: PolicyRnn::new(space, rng)?,
            optimizer: Adam::new(DEFAULT_LR),
            updates: 0,
        })
    }

    /// Creates a trainer around an existing policy (for custom widths or
    /// entropy settings).
    pub fn with_policy(policy: PolicyRnn, lr: f32) -> Self {
        ReinforceTrainer {
            policy,
            optimizer: Adam::new(lr),
            updates: 0,
        }
    }

    /// The underlying policy (e.g. for [`PolicyRnn::log_prob_of`]
    /// diagnostics).
    pub fn policy(&self) -> &PolicyRnn {
        &self.policy
    }

    /// Number of gradient updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Snapshots the trainer's mutable state for checkpointing; the
    /// inverse of [`ReinforceTrainer::import_state`].
    pub fn export_state(&mut self) -> TrainerState {
        TrainerState {
            params: self.policy.export_params(),
            optimizer: self.optimizer.export_state(),
            updates: self.updates as u64,
        }
    }

    /// Restores state captured by [`ReinforceTrainer::export_state`] on a
    /// trainer built over an identically-shaped policy with the same
    /// hyper-parameters; sampling and updates then continue
    /// bit-identically from the snapshot point.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::InvalidConfig`] when the parameter
    /// buffer does not match this policy's parameter count.
    pub fn import_state(&mut self, state: &TrainerState) -> Result<()> {
        self.policy.import_params(&state.params)?;
        self.optimizer.import_state(&state.optimizer);
        self.updates = state.updates as usize;
        Ok(())
    }

    /// Samples a child architecture from the current policy.
    ///
    /// # Errors
    ///
    /// Propagates policy errors.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Result<ArchSample> {
        let episode = self.policy.sample(rng)?;
        let arch = ChildArch::from_indices(self.policy.space(), episode.indices())?;
        Ok(ArchSample { arch, episode })
    }

    /// Applies one REINFORCE update with the given advantage (FNAS passes
    /// the Eq. (1) reward, which is already baselined).
    ///
    /// # Errors
    ///
    /// Returns an episode/space mismatch or optimiser error.
    pub fn update(&mut self, sample: &ArchSample, advantage: f32) -> Result<()> {
        self.update_batch(std::slice::from_ref(&(sample.clone(), advantage)))
    }

    /// Applies one optimiser step over the *averaged* gradient of several
    /// episodes — the lower-variance minibatch REINFORCE of \[16\], where
    /// gradients from a batch of child networks are combined before the
    /// controller moves.
    ///
    /// # Errors
    ///
    /// Returns an episode/space mismatch or optimiser error; an empty batch
    /// is a no-op. A NaN/Inf advantage anywhere in the batch is rejected
    /// with [`ControllerError::NonFiniteAdvantage`] *before* any gradient
    /// is accumulated — one poisoned reward would otherwise spread NaN
    /// through every parameter on the next optimiser step.
    pub fn update_batch(&mut self, batch: &[(ArchSample, f32)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.accumulate_episode(batch)?;
        self.apply_step()
    }

    /// Gradient **accumulation** — the pure half of an update: folds one
    /// episode's averaged REINFORCE gradient into the policy's gradient
    /// buffers *without* touching the parameters or the optimiser. Results
    /// computed elsewhere (another shard's episode, a replayed
    /// [`crate::reinforce::TrainerState`]) reduce deterministically by
    /// accumulating in a fixed order and then calling
    /// [`ReinforceTrainer::apply_step`] once.
    ///
    /// # Errors
    ///
    /// Returns an episode/space mismatch, or
    /// [`ControllerError::NonFiniteAdvantage`] *before* any gradient is
    /// accumulated if an advantage is NaN/Inf; an empty batch is a no-op.
    pub fn accumulate_episode(&mut self, batch: &[(ArchSample, f32)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if let Some((_, bad)) = batch.iter().find(|(_, adv)| !adv.is_finite()) {
            return Err(ControllerError::NonFiniteAdvantage { value: *bad });
        }
        let scale = 1.0 / batch.len() as f32;
        for (sample, advantage) in batch {
            self.policy
                .accumulate_gradient(&sample.episode, advantage * scale)?;
        }
        Ok(())
    }

    /// Gradient **application** — the impure half of an update: one Adam
    /// step over whatever [`ReinforceTrainer::accumulate_episode`] has
    /// gathered since the last step, then zeroed gradients.
    ///
    /// # Errors
    ///
    /// Propagates optimiser slot/shape errors.
    pub fn apply_step(&mut self) -> Result<()> {
        self.policy.apply(&mut self.optimizer)?;
        self.updates += 1;
        Ok(())
    }
}

/// An exponential-moving-average baseline over accuracies, as used by the
/// reward function of Eq. (1) (`b` is "an exponential moving average of the
/// previous architecture accuracies").
///
/// # Examples
///
/// ```
/// use fnas_controller::reinforce::EmaBaseline;
///
/// let mut b = EmaBaseline::new(0.5);
/// assert_eq!(b.value(), 0.0);
/// b.observe(1.0);
/// b.observe(0.0);
/// assert!((b.value() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmaBaseline {
    decay: f32,
    value: Option<f32>,
}

impl EmaBaseline {
    /// Creates a baseline with decay `β`: `b ← β·b + (1−β)·x`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ decay < 1`.
    pub fn new(decay: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        EmaBaseline { decay, value: None }
    }

    /// Rebuilds a baseline from checkpointed state: the decay and the raw
    /// value as returned by [`EmaBaseline::raw_value`] (`None` = no
    /// observation folded in yet, which `value()`'s `0.0` cannot encode).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ decay < 1`, like [`EmaBaseline::new`].
    pub fn restore(decay: f32, value: Option<f32>) -> Self {
        let mut b = EmaBaseline::new(decay);
        b.value = value;
        b
    }

    /// Current baseline; `0.0` before the first observation.
    pub fn value(&self) -> f32 {
        self.value.unwrap_or(0.0)
    }

    /// The raw state: `None` before the first observation (for
    /// checkpointing — see [`EmaBaseline::restore`]).
    pub fn raw_value(&self) -> Option<f32> {
        self.value
    }

    /// The decay constant `β`.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Folds a new observation into the average. The first observation
    /// initialises the baseline directly. Non-finite observations are
    /// ignored: a single NaN accuracy would otherwise poison the baseline
    /// — and through it every subsequent reward — permanently.
    pub fn observe(&mut self, x: f32) {
        if !x.is_finite() {
            return;
        }
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.decay * v + (1.0 - self.decay) * x,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// REINFORCE must be able to optimise a simple synthetic objective:
    /// reward = fraction of decisions equal to option 0.
    #[test]
    fn learns_to_prefer_option_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let space = SearchSpace::mnist();
        let mut trainer = ReinforceTrainer::new(&space, &mut rng).unwrap();
        let mut baseline = EmaBaseline::new(0.8);
        let score =
            |idx: &[usize]| idx.iter().filter(|&&i| i == 0).count() as f32 / idx.len() as f32;
        let mut early = 0.0f32;
        let mut late = 0.0f32;
        for it in 0..300 {
            let s = trainer.sample(&mut rng).unwrap();
            let r = score(s.episode().indices());
            let adv = r - baseline.value();
            baseline.observe(r);
            trainer.update(&s, adv).unwrap();
            if it < 30 {
                early += r;
            }
            if it >= 270 {
                late += r;
            }
        }
        assert!(
            late > early + 3.0,
            "late score {late} should beat early {early} clearly"
        );
        assert_eq!(trainer.updates(), 300);
    }

    #[test]
    fn sample_decodes_into_the_space() {
        let mut rng = StdRng::seed_from_u64(0);
        let space = SearchSpace::cifar10();
        let trainer = ReinforceTrainer::new(&space, &mut rng).unwrap();
        let s = trainer.sample(&mut rng).unwrap();
        assert_eq!(s.arch().num_layers(), 10);
        for l in s.arch().layers() {
            assert!(space.filter_sizes().contains(&l.filter_size));
            assert!(space.filter_counts().contains(&l.num_filters));
        }
    }

    #[test]
    fn batched_updates_also_learn() {
        let mut rng = StdRng::seed_from_u64(14);
        let space = SearchSpace::mnist();
        let mut trainer = ReinforceTrainer::new(&space, &mut rng).unwrap();
        let mut baseline = EmaBaseline::new(0.8);
        let score =
            |idx: &[usize]| idx.iter().filter(|&&i| i == 0).count() as f32 / idx.len() as f32;
        let mut early = 0.0f32;
        let mut late = 0.0f32;
        for round in 0..80 {
            let batch: Vec<(ArchSample, f32)> = (0..4)
                .map(|_| {
                    let s = trainer.sample(&mut rng).unwrap();
                    let r = score(s.episode().indices());
                    let adv = r - baseline.value();
                    baseline.observe(r);
                    if round < 10 {
                        early += r;
                    }
                    if round >= 70 {
                        late += r;
                    }
                    (s, adv)
                })
                .collect();
            trainer.update_batch(&batch).unwrap();
        }
        assert_eq!(trainer.updates(), 80);
        assert!(late > early + 2.0, "late {late} vs early {early}");
        // Empty batches are harmless no-ops.
        trainer.update_batch(&[]).unwrap();
        assert_eq!(trainer.updates(), 80);
    }

    #[test]
    fn accumulate_then_apply_is_bit_identical_to_update_batch() {
        let space = SearchSpace::mnist();
        let score =
            |idx: &[usize]| idx.iter().filter(|&&i| i == 0).count() as f32 / idx.len() as f32;
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut a = ReinforceTrainer::new(&space, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(23);
        let mut b = ReinforceTrainer::new(&space, &mut rng_b).unwrap();
        for _ in 0..10 {
            let batch_a: Vec<(ArchSample, f32)> = (0..4)
                .map(|_| {
                    let s = a.sample(&mut rng_a).unwrap();
                    let adv = score(s.episode().indices()) - 0.4;
                    (s, adv)
                })
                .collect();
            let batch_b: Vec<(ArchSample, f32)> = (0..4)
                .map(|_| {
                    let s = b.sample(&mut rng_b).unwrap();
                    let adv = score(s.episode().indices()) - 0.4;
                    (s, adv)
                })
                .collect();
            a.update_batch(&batch_a).unwrap();
            b.accumulate_episode(&batch_b).unwrap();
            b.apply_step().unwrap();
        }
        assert_eq!(a.updates(), b.updates());
        let pa = a.export_state();
        let pb = b.export_state();
        assert_eq!(pa.params.len(), pb.params.len());
        for (x, y) in pa.params.iter().zip(&pb.params) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Accumulating an empty episode leaves the next step unchanged.
        b.accumulate_episode(&[]).unwrap();
        assert_eq!(b.export_state().params, pb.params);
    }

    #[test]
    fn ema_baseline_tracks_rewards() {
        let mut b = EmaBaseline::new(0.9);
        for _ in 0..200 {
            b.observe(0.75);
        }
        assert!((b.value() - 0.75).abs() < 1e-4);
    }

    #[test]
    fn ema_baseline_ignores_non_finite_observations() {
        let mut b = EmaBaseline::new(0.5);
        b.observe(f32::NAN);
        assert_eq!(b.raw_value(), None);
        b.observe(0.8);
        b.observe(f32::INFINITY);
        b.observe(f32::NEG_INFINITY);
        assert_eq!(b.value(), 0.8);
    }

    #[test]
    fn ema_baseline_restore_round_trips() {
        let mut b = EmaBaseline::new(0.7);
        b.observe(0.9);
        b.observe(0.5);
        let restored = EmaBaseline::restore(b.decay(), b.raw_value());
        assert_eq!(restored, b);
        // A never-observed baseline restores to the same "empty" state.
        let empty = EmaBaseline::restore(0.7, None);
        assert_eq!(empty, EmaBaseline::new(0.7));
        assert_eq!(empty.value(), 0.0);
    }

    #[test]
    fn non_finite_advantage_is_rejected_before_any_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trainer = ReinforceTrainer::new(&SearchSpace::mnist(), &mut rng).unwrap();
        let s = trainer.sample(&mut rng).unwrap();
        let before = trainer.policy().log_prob_of(s.episode().indices()).unwrap();
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(matches!(
                trainer.update(&s, bad),
                Err(ControllerError::NonFiniteAdvantage { .. })
            ));
        }
        // Mixed batches are rejected atomically: the good sample's
        // gradient must not have been applied either.
        let good = (s.clone(), 0.5f32);
        let bad = (s.clone(), f32::NAN);
        assert!(trainer.update_batch(&[good, bad]).is_err());
        assert_eq!(trainer.updates(), 0);
        let after = trainer.policy().log_prob_of(s.episode().indices()).unwrap();
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "policy must be untouched"
        );
    }

    #[test]
    fn trainer_state_round_trip_resumes_bit_identically() {
        let space = SearchSpace::mnist();
        let score =
            |idx: &[usize]| idx.iter().filter(|&&i| i == 0).count() as f32 / idx.len() as f32;
        let drive = |trainer: &mut ReinforceTrainer, rng: &mut StdRng, steps: usize| {
            for _ in 0..steps {
                let s = trainer.sample(rng).unwrap();
                let r = score(s.episode().indices());
                trainer.update(&s, r - 0.4).unwrap();
            }
        };
        // Uninterrupted run: 20 updates.
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut a = ReinforceTrainer::new(&space, &mut rng_a).unwrap();
        drive(&mut a, &mut rng_a, 20);
        // Interrupted run: 8 updates, checkpoint, rebuild, 12 more. The
        // driving RNG state is carried over via the rand shim's state
        // snapshot, exactly like the searcher's checkpoint does.
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut b = ReinforceTrainer::new(&space, &mut rng_b).unwrap();
        drive(&mut b, &mut rng_b, 8);
        let state = b.export_state();
        assert_eq!(state.updates, 8);
        let mut rng_c = StdRng::from_state(rng_b.state());
        let mut fresh_init = StdRng::seed_from_u64(999);
        let mut c = ReinforceTrainer::new(&space, &mut fresh_init).unwrap();
        c.import_state(&state).unwrap();
        drive(&mut c, &mut rng_c, 12);
        assert_eq!(c.updates(), 20);
        let probe = a.sample(&mut StdRng::seed_from_u64(0)).unwrap();
        let la = a.policy().log_prob_of(probe.episode().indices()).unwrap();
        let lc = c.policy().log_prob_of(probe.episode().indices()).unwrap();
        assert_eq!(la.to_bits(), lc.to_bits());
        // A state for a different policy shape is rejected.
        let mut rng_d = StdRng::seed_from_u64(1);
        let mut d = ReinforceTrainer::new(&SearchSpace::cifar10(), &mut rng_d).unwrap();
        assert!(d.import_state(&state).is_err());
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_panics() {
        let _ = EmaBaseline::new(1.0);
    }
}
