//! Sampled child architectures.

use fnas_nn::layer::LayerSpec;

use crate::space::SearchSpace;
use crate::{ControllerError, Result};

/// One convolutional layer of a child network: the values (not menu
/// indices) the controller chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerChoice {
    /// Square kernel extent.
    pub filter_size: usize,
    /// Number of filters (output channels).
    pub num_filters: usize,
}

/// A complete child architecture: an ordered list of layer choices.
///
/// # Examples
///
/// ```
/// use fnas_controller::arch::ChildArch;
/// use fnas_controller::space::SearchSpace;
///
/// # fn main() -> Result<(), fnas_controller::ControllerError> {
/// let space = SearchSpace::mnist();
/// // Indices into the menus, one (size, count) pair per layer.
/// let arch = ChildArch::from_indices(&space, &[0, 0, 1, 1, 2, 2, 0, 2])?;
/// assert_eq!(arch.num_layers(), 4);
/// assert_eq!(arch.layer(0).filter_size, 5);
/// assert_eq!(arch.layer(2).num_filters, 36);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChildArch {
    layers: Vec<LayerChoice>,
}

impl ChildArch {
    /// Creates an architecture directly from layer choices.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::InvalidConfig`] for an empty layer list or
    /// zero-valued choices.
    pub fn new(layers: Vec<LayerChoice>) -> Result<Self> {
        if layers.is_empty() {
            return Err(ControllerError::InvalidConfig {
                what: "child architecture needs at least one layer".to_string(),
            });
        }
        if layers
            .iter()
            .any(|l| l.filter_size == 0 || l.num_filters == 0)
        {
            return Err(ControllerError::InvalidConfig {
                what: "layer choices must be non-zero".to_string(),
            });
        }
        Ok(ChildArch { layers })
    }

    /// Decodes a flat decision-index sequence (as emitted by the policy)
    /// against `space`.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EpisodeMismatch`] if the index count is
    /// not `2·L`, and [`ControllerError::InvalidConfig`] if any index is out
    /// of range for its menu.
    pub fn from_indices(space: &SearchSpace, indices: &[usize]) -> Result<Self> {
        if indices.len() != space.num_decisions() {
            return Err(ControllerError::EpisodeMismatch {
                episode_steps: indices.len(),
                space_steps: space.num_decisions(),
            });
        }
        let mut layers = Vec::with_capacity(space.layers());
        for (layer, pair) in indices.chunks_exact(2).enumerate() {
            let (si, ci) = (pair[0], pair[1]);
            let sizes = space.filter_sizes();
            let counts = space.filter_counts();
            if si >= sizes.len() || ci >= counts.len() {
                return Err(ControllerError::InvalidConfig {
                    what: format!(
                        "layer {layer}: option index out of range (size {si}/{}, count {ci}/{})",
                        sizes.len(),
                        counts.len()
                    ),
                });
            }
            layers.push(LayerChoice {
                filter_size: sizes[si],
                num_filters: counts[ci],
            });
        }
        ChildArch::new(layers)
    }

    /// Number of convolutional layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The choice for layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> LayerChoice {
        self.layers[i]
    }

    /// All layer choices in order.
    pub fn layers(&self) -> &[LayerChoice] {
        &self.layers
    }

    /// Expands the architecture into a trainable layer stack: each chosen
    /// convolution followed by ReLU, then global average pooling and a
    /// classifier with `num_classes` outputs.
    pub fn layer_specs(&self, num_classes: usize) -> Vec<LayerSpec> {
        let mut specs = Vec::with_capacity(2 * self.layers.len() + 2);
        for l in &self.layers {
            specs.push(LayerSpec::conv(l.num_filters, l.filter_size));
            specs.push(LayerSpec::relu());
        }
        specs.push(LayerSpec::global_avg_pool());
        specs.push(LayerSpec::dense(num_classes));
        specs
    }

    /// Total trainable parameters of the convolutional trunk given the
    /// input channel count (a cheap complexity proxy used by accuracy
    /// surrogates).
    pub fn conv_param_count(&self, in_channels: usize) -> u64 {
        let mut prev = in_channels as u64;
        let mut total = 0u64;
        for l in &self.layers {
            let k = l.filter_size as u64;
            let m = l.num_filters as u64;
            total += m * prev * k * k + m;
            prev = m;
        }
        total
    }

    /// A compact human-readable description like `5x5:18, 7x7:36`.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| format!("{0}x{0}:{1}", l.filter_size, l.num_filters))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_decodes_menus() {
        let space = SearchSpace::mnist();
        let arch = ChildArch::from_indices(&space, &[2, 1, 0, 0, 1, 2, 2, 2]).unwrap();
        assert_eq!(arch.layer(0).filter_size, 14);
        assert_eq!(arch.layer(0).num_filters, 18);
        assert_eq!(arch.layer(1).filter_size, 5);
        assert_eq!(arch.layer(3).num_filters, 36);
    }

    #[test]
    fn wrong_lengths_and_indices_rejected() {
        let space = SearchSpace::mnist();
        assert!(matches!(
            ChildArch::from_indices(&space, &[0, 0]),
            Err(ControllerError::EpisodeMismatch { .. })
        ));
        assert!(ChildArch::from_indices(&space, &[3, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(ChildArch::from_indices(&space, &[0, 9, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn layer_specs_shapes_the_standard_stack() {
        let arch = ChildArch::new(vec![
            LayerChoice {
                filter_size: 3,
                num_filters: 8,
            },
            LayerChoice {
                filter_size: 5,
                num_filters: 16,
            },
        ])
        .unwrap();
        let specs = arch.layer_specs(10);
        assert_eq!(specs.len(), 6); // 2×(conv, relu) + gap + dense
        assert_eq!(specs[0], LayerSpec::conv(8, 3));
        assert_eq!(specs[2], LayerSpec::conv(16, 5));
        assert_eq!(specs[5], LayerSpec::dense(10));
    }

    #[test]
    fn conv_param_count_matches_hand_computation() {
        let arch = ChildArch::new(vec![
            LayerChoice {
                filter_size: 3,
                num_filters: 4,
            },
            LayerChoice {
                filter_size: 5,
                num_filters: 2,
            },
        ])
        .unwrap();
        // layer0: 4·1·9 + 4 = 40; layer1: 2·4·25 + 2 = 202.
        assert_eq!(arch.conv_param_count(1), 242);
    }

    #[test]
    fn describe_is_stable() {
        let arch = ChildArch::new(vec![LayerChoice {
            filter_size: 7,
            num_filters: 36,
        }])
        .unwrap();
        assert_eq!(arch.describe(), "7x7:36");
    }

    #[test]
    fn empty_and_zero_archs_rejected() {
        assert!(ChildArch::new(vec![]).is_err());
        assert!(ChildArch::new(vec![LayerChoice {
            filter_size: 0,
            num_filters: 4
        }])
        .is_err());
    }
}
