//! The reinforcement-learning NAS controller of the FNAS reproduction.
//!
//! FNAS keeps the controller of Zoph & Le's NAS \[16\]: a recurrent policy
//! network emits one hyper-parameter decision per step — alternating
//! *filter size* and *filter count* for each convolutional layer — and is
//! trained with REINFORCE on the reward the framework computes for the
//! resulting child network.
//!
//! * [`space`] — the per-dataset search spaces of Table 2;
//! * [`arch`] — the sampled child architecture and its conversion to
//!   trainable layer stacks;
//! * [`rnn`] — the LSTM policy with per-decision softmax heads and manual
//!   backpropagation-through-time;
//! * [`reinforce`] — the policy-gradient trainer with baseline handling.
//!
//! # Examples
//!
//! ```
//! use fnas_controller::reinforce::ReinforceTrainer;
//! use fnas_controller::space::SearchSpace;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fnas_controller::ControllerError> {
//! let space = SearchSpace::mnist();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut trainer = ReinforceTrainer::new(&space, &mut rng)?;
//! let sample = trainer.sample(&mut rng)?;
//! assert_eq!(sample.arch().num_layers(), 4);
//! trainer.update(&sample, 0.5)?; // reward from the FNAS framework
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod error;
pub mod reinforce;
pub mod rnn;
pub mod space;

pub use error::ControllerError;

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, ControllerError>;
