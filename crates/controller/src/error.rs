use std::error::Error;
use std::fmt;

use fnas_nn::NnError;

/// Errors produced by the NAS controller.
///
/// # Examples
///
/// ```
/// use fnas_controller::space::SearchSpace;
///
/// let err = SearchSpace::new(0, vec![3], vec![8]).unwrap_err();
/// assert!(err.to_string().contains("layer"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControllerError {
    /// A search-space or policy configuration value is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        what: String,
    },
    /// The recurrent policy substrate failed.
    Nn(NnError),
    /// An episode does not belong to the search space it is used with.
    EpisodeMismatch {
        /// Steps the episode recorded.
        episode_steps: usize,
        /// Steps the space requires.
        space_steps: usize,
    },
    /// A REINFORCE update was handed a NaN/Inf advantage, which would
    /// silently corrupt every policy parameter it touches. The searcher
    /// quarantines non-finite accuracies before rewards are computed, so
    /// reaching this error indicates a broken custom oracle or reward.
    NonFiniteAdvantage {
        /// The offending advantage value.
        value: f32,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::InvalidConfig { what } => {
                write!(f, "invalid controller config: {what}")
            }
            ControllerError::Nn(e) => write!(f, "policy network failed: {e}"),
            ControllerError::EpisodeMismatch {
                episode_steps,
                space_steps,
            } => write!(
                f,
                "episode has {episode_steps} decisions but the space needs {space_steps}"
            ),
            ControllerError::NonFiniteAdvantage { value } => write!(
                f,
                "refusing a REINFORCE update with non-finite advantage {value}"
            ),
        }
    }
}

impl Error for ControllerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControllerError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ControllerError {
    fn from(e: NnError) -> Self {
        ControllerError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ControllerError>();
    }

    #[test]
    fn nn_source_is_preserved() {
        let err: ControllerError = NnError::InvalidConfig {
            what: "x".to_string(),
        }
        .into();
        assert!(err.source().is_some());
    }
}
