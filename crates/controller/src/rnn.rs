//! The LSTM policy network with per-decision softmax heads.
//!
//! The controller of \[16\] is a recurrent network: at step `t` it consumes a
//! learned embedding of the previous decision (a trainable start token at
//! `t = 0`), updates its LSTM state, and projects the hidden state through
//! the head matching the decision kind (filter size / filter count) to get
//! a categorical distribution over that menu. The architecture is the
//! sequence of samples; REINFORCE backpropagates through the heads, the
//! unrolled LSTM and the embeddings.

use fnas_nn::layer::ParamMut;
use fnas_nn::lstm::{LstmCell, LstmState, StepCache};
use fnas_nn::optim::Optimizer;
use fnas_tensor::{Init, Tensor, XavierUniform};
use rand::Rng;
use rand::RngCore;

use crate::space::{DecisionKind, SearchSpace};
use crate::{ControllerError, Result};

/// Default embedding width.
pub const DEFAULT_EMBED_DIM: usize = 8;
/// Default LSTM hidden width.
pub const DEFAULT_HIDDEN_DIM: usize = 24;

/// A sampled decision sequence with everything needed for the policy
/// gradient.
#[derive(Debug, Clone)]
pub struct Episode {
    indices: Vec<usize>,
    log_prob: f32,
    caches: Vec<StepCache>,
    hs: Vec<Tensor>,
    probs: Vec<Tensor>,
}

impl Episode {
    /// Menu indices chosen at each decision step.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Total log-probability of the sampled sequence under the policy.
    pub fn log_prob(&self) -> f32 {
        self.log_prob
    }

    /// Number of decision steps.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` for a zero-length episode (never produced by sampling).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// One decision head: a linear projection of the hidden state onto a menu.
#[derive(Debug, Clone)]
struct Head {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
}

impl Head {
    fn new(options: usize, hidden: usize, rng: &mut dyn RngCore) -> Self {
        Head {
            w: XavierUniform.init(&[options, hidden].into(), rng),
            b: Tensor::zeros([options]),
            grad_w: Tensor::zeros([options, hidden]),
            grad_b: Tensor::zeros([options]),
        }
    }
}

/// A trainable embedding table with one row per menu option.
#[derive(Debug, Clone)]
struct Embedding {
    table: Tensor,
    grad: Tensor,
    dim: usize,
}

impl Embedding {
    fn new(rows: usize, dim: usize, rng: &mut dyn RngCore) -> Self {
        Embedding {
            table: XavierUniform.init(&[rows, dim].into(), rng),
            grad: Tensor::zeros([rows, dim]),
            dim,
        }
    }

    fn row(&self, idx: usize) -> Tensor {
        let data = self.table.as_slice()[idx * self.dim..(idx + 1) * self.dim].to_vec();
        Tensor::from_vec(data, [self.dim]).expect("row length matches dim")
    }

    fn add_row_grad(&mut self, idx: usize, g: &Tensor) {
        let base = idx * self.dim;
        for (i, &v) in g.as_slice().iter().enumerate() {
            *self.grad.at_mut(base + i) += v;
        }
    }
}

/// The recurrent policy over a [`SearchSpace`].
///
/// # Examples
///
/// ```
/// use fnas_controller::rnn::PolicyRnn;
/// use fnas_controller::space::SearchSpace;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fnas_controller::ControllerError> {
/// let space = SearchSpace::mnist();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let policy = PolicyRnn::new(&space, &mut rng)?;
/// let episode = policy.sample(&mut rng)?;
/// assert_eq!(episode.len(), space.num_decisions());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PolicyRnn {
    space: SearchSpace,
    cell: LstmCell,
    start: Tensor,
    grad_start: Tensor,
    embed_fs: Embedding,
    embed_fn: Embedding,
    head_fs: Head,
    head_fn: Head,
    entropy_weight: f32,
}

impl PolicyRnn {
    /// Creates a policy with the default widths.
    ///
    /// # Errors
    ///
    /// Propagates LSTM construction errors (zero widths cannot occur with
    /// the defaults).
    pub fn new(space: &SearchSpace, rng: &mut dyn RngCore) -> Result<Self> {
        PolicyRnn::with_dims(space, DEFAULT_EMBED_DIM, DEFAULT_HIDDEN_DIM, rng)
    }

    /// Creates a policy with explicit embedding and hidden widths.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::Nn`] if either width is zero.
    pub fn with_dims(
        space: &SearchSpace,
        embed_dim: usize,
        hidden_dim: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        let cell = LstmCell::new(embed_dim, hidden_dim, rng)?;
        Ok(PolicyRnn {
            space: space.clone(),
            cell,
            start: Tensor::rand_uniform([embed_dim], -0.1, 0.1, &mut WrapRng(rng)),
            grad_start: Tensor::zeros([embed_dim]),
            embed_fs: Embedding::new(space.filter_sizes().len(), embed_dim, rng),
            embed_fn: Embedding::new(space.filter_counts().len(), embed_dim, rng),
            head_fs: Head::new(space.filter_sizes().len(), hidden_dim, rng),
            head_fn: Head::new(space.filter_counts().len(), hidden_dim, rng),
            entropy_weight: 0.0,
        })
    }

    /// Adds an entropy bonus to the policy-gradient loss (encourages
    /// exploration; the paper's controller uses none, so the default is 0).
    #[must_use]
    pub fn with_entropy_weight(mut self, weight: f32) -> Self {
        self.entropy_weight = weight;
        self
    }

    /// The search space this policy emits decisions for.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.cell.param_count()
            + self.start.len()
            + self.embed_fs.table.len()
            + self.embed_fn.table.len()
            + self.head_fs.w.len()
            + self.head_fs.b.len()
            + self.head_fn.w.len()
            + self.head_fn.b.len()
    }

    fn head(&self, kind: DecisionKind) -> &Head {
        match kind {
            DecisionKind::FilterSize => &self.head_fs,
            DecisionKind::FilterCount => &self.head_fn,
        }
    }

    /// The categorical distribution at step `t` given the hidden state.
    fn step_probs(&self, kind: DecisionKind, h: &Tensor) -> Result<Tensor> {
        let head = self.head(kind);
        let logits = head
            .w
            .matvec(h)
            .and_then(|z| z.add(&head.b))
            .map_err(fnas_nn::NnError::from)?;
        Ok(logits.softmax().map_err(fnas_nn::NnError::from)?)
    }

    /// Samples a full decision sequence.
    ///
    /// # Errors
    ///
    /// Propagates internal tensor errors (which indicate a bug rather than
    /// a user mistake).
    pub fn sample(&self, rng: &mut dyn RngCore) -> Result<Episode> {
        let steps = self.space.num_decisions();
        let mut state = LstmState::zeros(self.cell.hidden_size());
        let mut x = self.start.clone();
        let mut episode = Episode {
            indices: Vec::with_capacity(steps),
            log_prob: 0.0,
            caches: Vec::with_capacity(steps),
            hs: Vec::with_capacity(steps),
            probs: Vec::with_capacity(steps),
        };
        for t in 0..steps {
            let (next, cache) = self.cell.step(&x, &state)?;
            let kind = self.space.decision_kind(t);
            let probs = self.step_probs(kind, &next.h)?;
            let idx = sample_categorical(&probs, rng);
            episode.log_prob += probs.at(idx).max(f32::MIN_POSITIVE).ln();
            episode.indices.push(idx);
            episode.caches.push(cache);
            episode.hs.push(next.h.clone());
            episode.probs.push(probs);
            x = match kind {
                DecisionKind::FilterSize => self.embed_fs.row(idx),
                DecisionKind::FilterCount => self.embed_fn.row(idx),
            };
            state = next;
        }
        Ok(episode)
    }

    /// Mean per-step entropy (nats) of the decision distributions along the
    /// greedy rollout — a convergence diagnostic: a fresh policy sits near
    /// `ln(options)`, a collapsed one near zero.
    ///
    /// # Errors
    ///
    /// Propagates internal tensor errors.
    pub fn mean_entropy(&self) -> Result<f32> {
        let steps = self.space.num_decisions();
        let mut state = LstmState::zeros(self.cell.hidden_size());
        let mut x = self.start.clone();
        let mut total = 0.0f32;
        for t in 0..steps {
            let (next, _) = self.cell.step(&x, &state)?;
            let kind = self.space.decision_kind(t);
            let probs = self.step_probs(kind, &next.h)?;
            total += -probs
                .as_slice()
                .iter()
                .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                .sum::<f32>();
            let idx = probs.argmax().map_err(fnas_nn::NnError::from)?;
            x = match kind {
                DecisionKind::FilterSize => self.embed_fs.row(idx),
                DecisionKind::FilterCount => self.embed_fn.row(idx),
            };
            state = next;
        }
        Ok(total / steps as f32)
    }

    /// Greedy (argmax) decode: the most likely decision at every step,
    /// following the chain of most likely embeddings.
    ///
    /// This is the "final design after convergence" of the paper's Fig. 1 —
    /// once the controller has converged, the deployed architecture is read
    /// off deterministically instead of sampled.
    ///
    /// # Errors
    ///
    /// Propagates internal tensor errors (indicating a bug, not misuse).
    pub fn argmax_decode(&self) -> Result<Vec<usize>> {
        let steps = self.space.num_decisions();
        let mut state = LstmState::zeros(self.cell.hidden_size());
        let mut x = self.start.clone();
        let mut indices = Vec::with_capacity(steps);
        for t in 0..steps {
            let (next, _) = self.cell.step(&x, &state)?;
            let kind = self.space.decision_kind(t);
            let probs = self.step_probs(kind, &next.h)?;
            let idx = probs.argmax().map_err(fnas_nn::NnError::from)?;
            indices.push(idx);
            x = match kind {
                DecisionKind::FilterSize => self.embed_fs.row(idx),
                DecisionKind::FilterCount => self.embed_fn.row(idx),
            };
            state = next;
        }
        Ok(indices)
    }

    /// Log-probability of re-sampling exactly `indices` under the current
    /// policy (used in tests and for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EpisodeMismatch`] on length mismatch.
    pub fn log_prob_of(&self, indices: &[usize]) -> Result<f32> {
        if indices.len() != self.space.num_decisions() {
            return Err(ControllerError::EpisodeMismatch {
                episode_steps: indices.len(),
                space_steps: self.space.num_decisions(),
            });
        }
        let mut state = LstmState::zeros(self.cell.hidden_size());
        let mut x = self.start.clone();
        let mut lp = 0.0f32;
        for (t, &idx) in indices.iter().enumerate() {
            let (next, _) = self.cell.step(&x, &state)?;
            let kind = self.space.decision_kind(t);
            let probs = self.step_probs(kind, &next.h)?;
            lp += probs.at(idx).max(f32::MIN_POSITIVE).ln();
            x = match kind {
                DecisionKind::FilterSize => self.embed_fs.row(idx),
                DecisionKind::FilterCount => self.embed_fn.row(idx),
            };
            state = next;
        }
        Ok(lp)
    }

    /// Accumulates the REINFORCE gradient of `-advantage · log π(episode)`
    /// (plus the optional entropy bonus) into the parameter gradients.
    ///
    /// Call [`PolicyRnn::apply`] afterwards to take an optimiser step.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EpisodeMismatch`] if the episode length
    /// disagrees with the space.
    pub fn accumulate_gradient(&mut self, episode: &Episode, advantage: f32) -> Result<()> {
        let steps = self.space.num_decisions();
        if episode.len() != steps {
            return Err(ControllerError::EpisodeMismatch {
                episode_steps: episode.len(),
                space_steps: steps,
            });
        }
        let hidden = self.cell.hidden_size();
        let mut dh_next = Tensor::zeros([hidden]);
        let mut dc_next = Tensor::zeros([hidden]);
        for t in (0..steps).rev() {
            let kind = self.space.decision_kind(t);
            let probs = &episode.probs[t];
            let idx = episode.indices[t];
            // d(-adv·log p_idx)/dlogits = adv · (p − onehot)
            let mut dz = probs.scale(advantage);
            *dz.at_mut(idx) -= advantage;
            if self.entropy_weight > 0.0 {
                // Maximize entropy H: subtract ent·dH/dz, where
                // dH/dz_i = −p_i (log p_i + H).
                let entropy: f32 = -probs
                    .as_slice()
                    .iter()
                    .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                    .sum::<f32>();
                for (i, g) in dz.as_mut_slice().iter_mut().enumerate() {
                    let p = probs.at(i);
                    if p > 0.0 {
                        *g += self.entropy_weight * p * (p.ln() + entropy);
                    }
                }
            }
            let h = &episode.hs[t];
            {
                let head = match kind {
                    DecisionKind::FilterSize => &mut self.head_fs,
                    DecisionKind::FilterCount => &mut self.head_fn,
                };
                let gw = dz.outer(h).map_err(fnas_nn::NnError::from)?;
                head.grad_w
                    .add_scaled(&gw, 1.0)
                    .map_err(fnas_nn::NnError::from)?;
                head.grad_b
                    .add_scaled(&dz, 1.0)
                    .map_err(fnas_nn::NnError::from)?;
            }
            let head = self.head(kind);
            let dh_head = head
                .w
                .transpose()
                .and_then(|wt| wt.matvec(&dz))
                .map_err(fnas_nn::NnError::from)?;
            let dh = dh_head.add(&dh_next).map_err(fnas_nn::NnError::from)?;
            let (dx, dh_prev, dc_prev) =
                self.cell.backward_step(&episode.caches[t], &dh, &dc_next)?;
            // The input at step t is the embedding of the *previous*
            // decision (or the start token at t = 0).
            if t == 0 {
                self.grad_start
                    .add_scaled(&dx, 1.0)
                    .map_err(fnas_nn::NnError::from)?;
            } else {
                let prev_kind = self.space.decision_kind(t - 1);
                let prev_idx = episode.indices[t - 1];
                match prev_kind {
                    DecisionKind::FilterSize => self.embed_fs.add_row_grad(prev_idx, &dx),
                    DecisionKind::FilterCount => self.embed_fn.add_row_grad(prev_idx, &dx),
                }
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        Ok(())
    }

    /// Takes one optimiser step over every parameter, then zeroes the
    /// gradients.
    ///
    /// # Errors
    ///
    /// Propagates optimiser slot/shape errors.
    pub fn apply(&mut self, optimizer: &mut dyn Optimizer) -> Result<()> {
        optimizer.begin_step();
        let mut slot = 0usize;
        let mut result: std::result::Result<(), fnas_nn::NnError> = Ok(());
        self.visit_all(&mut |param| {
            if result.is_ok() {
                result = optimizer.step_param(slot, param);
            }
            slot += 1;
        });
        result.map_err(ControllerError::from)?;
        self.zero_grad();
        Ok(())
    }

    /// Serialises every parameter into one flat buffer (for
    /// checkpointing); the inverse of [`PolicyRnn::import_params`].
    pub fn export_params(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_all(&mut |p| out.extend_from_slice(p.value.as_slice()));
        out
    }

    /// Restores parameters from a buffer produced by
    /// [`PolicyRnn::export_params`] on an identically-shaped policy.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::InvalidConfig`] if the buffer length does
    /// not match this policy's parameter count.
    pub fn import_params(&mut self, params: &[f32]) -> Result<()> {
        if params.len() != self.param_count() {
            return Err(ControllerError::InvalidConfig {
                what: format!(
                    "checkpoint holds {} parameters but the policy has {}",
                    params.len(),
                    self.param_count()
                ),
            });
        }
        let mut offset = 0usize;
        self.visit_all(&mut |p| {
            let n = p.value.len();
            p.value
                .as_mut_slice()
                .copy_from_slice(&params[offset..offset + n]);
            offset += n;
        });
        Ok(())
    }

    /// Walks every parameter in the stable export/import/apply order.
    fn visit_all(&mut self, f: &mut dyn FnMut(ParamMut<'_>)) {
        self.cell.visit_params(f);
        f(ParamMut {
            value: &mut self.start,
            grad: &mut self.grad_start,
        });
        for emb in [&mut self.embed_fs, &mut self.embed_fn] {
            f(ParamMut {
                value: &mut emb.table,
                grad: &mut emb.grad,
            });
        }
        for head in [&mut self.head_fs, &mut self.head_fn] {
            f(ParamMut {
                value: &mut head.w,
                grad: &mut head.grad_w,
            });
            f(ParamMut {
                value: &mut head.b,
                grad: &mut head.grad_b,
            });
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.cell.zero_grad();
        self.grad_start.fill(0.0);
        self.embed_fs.grad.fill(0.0);
        self.embed_fn.grad.fill(0.0);
        for head in [&mut self.head_fs, &mut self.head_fn] {
            head.grad_w.fill(0.0);
            head.grad_b.fill(0.0);
        }
    }
}

/// Samples an index from a categorical distribution.
fn sample_categorical(probs: &Tensor, rng: &mut dyn RngCore) -> usize {
    let mut wrapped = WrapRng(rng);
    let u: f32 = wrapped.gen_range(0.0..1.0);
    let mut acc = 0.0f32;
    for (i, &p) in probs.as_slice().iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Adapter so `&mut dyn RngCore` gains the `Rng` extension methods.
struct WrapRng<'a>(&'a mut dyn RngCore);

impl RngCore for WrapRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnas_nn::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy(seed: u64) -> (PolicyRnn, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PolicyRnn::new(&SearchSpace::mnist(), &mut rng).unwrap();
        (p, rng)
    }

    #[test]
    fn sample_emits_valid_indices() {
        let (p, mut rng) = policy(0);
        for _ in 0..20 {
            let e = p.sample(&mut rng).unwrap();
            assert_eq!(e.len(), 8);
            for (t, &idx) in e.indices().iter().enumerate() {
                assert!(idx < p.space().options(t).len());
            }
            assert!(e.log_prob() < 0.0);
            assert!(!e.is_empty());
        }
    }

    #[test]
    fn log_prob_of_matches_episode() {
        let (p, mut rng) = policy(1);
        let e = p.sample(&mut rng).unwrap();
        let lp = p.log_prob_of(e.indices()).unwrap();
        assert!((lp - e.log_prob()).abs() < 1e-4);
        assert!(p.log_prob_of(&[0, 1]).is_err());
    }

    #[test]
    fn positive_advantage_raises_episode_probability() {
        // One small SGD step in the gradient direction must increase the
        // episode's log-probability (first-order ascent guarantee; the
        // cached episode is only a valid gradient at the parameters it was
        // sampled under, so exactly one step is taken).
        let (mut p, mut rng) = policy(2);
        let e = p.sample(&mut rng).unwrap();
        let before = p.log_prob_of(e.indices()).unwrap();
        let mut sgd = fnas_nn::optim::Sgd::new(0.01, 0.0);
        p.accumulate_gradient(&e, 1.0).unwrap();
        p.apply(&mut sgd).unwrap();
        let after = p.log_prob_of(e.indices()).unwrap();
        assert!(after > before, "log prob {before} → {after}");
    }

    #[test]
    fn negative_advantage_lowers_episode_probability() {
        let (mut p, mut rng) = policy(3);
        let e = p.sample(&mut rng).unwrap();
        let before = p.log_prob_of(e.indices()).unwrap();
        let mut sgd = fnas_nn::optim::Sgd::new(0.01, 0.0);
        p.accumulate_gradient(&e, -1.0).unwrap();
        p.apply(&mut sgd).unwrap();
        let after = p.log_prob_of(e.indices()).unwrap();
        assert!(after < before, "log prob {before} → {after}");
    }

    #[test]
    fn sampling_is_stochastic_but_seeded() {
        let (p, _) = policy(4);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let e1 = p.sample(&mut r1).unwrap();
        let e2 = p.sample(&mut r2).unwrap();
        assert_eq!(e1.indices(), e2.indices());
        // Across many draws we should see at least two distinct sequences.
        let mut r3 = StdRng::seed_from_u64(8);
        let distinct: std::collections::HashSet<Vec<usize>> = (0..20)
            .map(|_| p.sample(&mut r3).unwrap().indices().to_vec())
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn argmax_decode_follows_the_learned_mode() {
        // Reinforce "option 0 everywhere" with fresh episodes; the greedy
        // decode must end up dominated by option 0.
        let mut rng = StdRng::seed_from_u64(17);
        let mut p = PolicyRnn::new(&SearchSpace::mnist(), &mut rng).unwrap();
        let mut adam = Adam::new(0.03);
        for _ in 0..300 {
            let e = p.sample(&mut rng).unwrap();
            let score = e.indices().iter().filter(|&&i| i == 0).count() as f32 / e.len() as f32;
            p.accumulate_gradient(&e, score - 0.4).unwrap();
            p.apply(&mut adam).unwrap();
        }
        let decoded = p.argmax_decode().unwrap();
        let zeros = decoded.iter().filter(|&&i| i == 0).count();
        assert!(zeros >= 6, "greedy decode {decoded:?} should be mostly 0s");
    }

    #[test]
    fn entropy_starts_high_and_drops_under_reinforcement() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut p = PolicyRnn::new(&SearchSpace::mnist(), &mut rng).unwrap();
        let fresh = p.mean_entropy().unwrap();
        // Menus have 3 options ⇒ uniform entropy ln(3) ≈ 1.0986.
        assert!(
            fresh > 0.8 && fresh <= (3.0f32).ln() + 0.05,
            "fresh {fresh}"
        );
        let mut adam = Adam::new(0.05);
        let e = p.sample(&mut rng).unwrap();
        for _ in 0..80 {
            p.accumulate_gradient(&e, 1.0).unwrap();
            p.apply(&mut adam).unwrap();
        }
        let collapsed = p.mean_entropy().unwrap();
        assert!(collapsed < fresh * 0.5, "{fresh} → {collapsed}");
    }

    #[test]
    fn argmax_decode_is_deterministic() {
        let (p, _) = policy(18);
        assert_eq!(p.argmax_decode().unwrap(), p.argmax_decode().unwrap());
        assert_eq!(p.argmax_decode().unwrap().len(), 8);
    }

    #[test]
    fn episode_from_other_space_is_rejected() {
        let (mut p, _) = policy(5);
        let mut rng = StdRng::seed_from_u64(0);
        let other = PolicyRnn::new(&SearchSpace::cifar10(), &mut rng).unwrap();
        let e = other.sample(&mut rng).unwrap();
        assert!(matches!(
            p.accumulate_gradient(&e, 1.0),
            Err(ControllerError::EpisodeMismatch { .. })
        ));
    }

    #[test]
    fn entropy_bonus_flattens_the_policy() {
        // Strongly reinforce one sequence with and without entropy; with a
        // large entropy bonus the winning probability should stay smaller.
        let run = |ent: f32| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut p = PolicyRnn::new(&SearchSpace::mnist(), &mut rng)
                .unwrap()
                .with_entropy_weight(ent);
            let e = p.sample(&mut rng).unwrap();
            let mut adam = Adam::new(0.05);
            for _ in 0..30 {
                p.accumulate_gradient(&e, 1.0).unwrap();
                p.apply(&mut adam).unwrap();
            }
            p.log_prob_of(e.indices()).unwrap()
        };
        assert!(run(0.5) < run(0.0));
    }

    #[test]
    fn export_import_round_trips_exactly() {
        let (mut a, mut rng) = policy(30);
        let mut b = PolicyRnn::new(&SearchSpace::mnist(), &mut rng).unwrap();
        // Different policies behave differently…
        let probe = a.sample(&mut rng).unwrap();
        assert_ne!(
            a.log_prob_of(probe.indices()).unwrap(),
            b.log_prob_of(probe.indices()).unwrap()
        );
        // …until the checkpoint is transplanted.
        let params = a.export_params();
        assert_eq!(params.len(), a.param_count());
        b.import_params(&params).unwrap();
        assert_eq!(
            a.log_prob_of(probe.indices()).unwrap(),
            b.log_prob_of(probe.indices()).unwrap()
        );
        // Wrong sizes are rejected.
        assert!(b.import_params(&params[1..]).is_err());
    }

    #[test]
    fn param_count_is_consistent() {
        let (mut p, _) = policy(6);
        let mut seen = 0usize;
        let counted = p.param_count();
        // Count via apply's traversal by using a no-op optimiser.
        #[derive(Debug)]
        struct CountOpt<'a>(&'a mut usize);
        impl Optimizer for CountOpt<'_> {
            fn step_param(&mut self, _slot: usize, param: ParamMut<'_>) -> fnas_nn::Result<()> {
                *self.0 += param.value.len();
                Ok(())
            }
        }
        p.apply(&mut CountOpt(&mut seen)).unwrap();
        assert_eq!(seen, counted);
    }
}
