//! Determinism of the batched execution engine.
//!
//! The contract pinned here: for a fixed `SearchConfig` (seed, batch
//! size), [`fnas::search::Searcher::run_batched`] produces **bit-identical
//! results regardless of worker count** — sequentially (0 workers) and on
//! 1, 2 or 8 pool threads. That holds even for the hard case of an
//! RNG-consuming oracle (real child training), because every child's
//! evaluation stream is derived from its logical position
//! `(run_seed, episode, child)` rather than from whichever worker happened
//! to pick it up.

use fnas::evaluator::TrainedEvaluator;
use fnas::experiment::ExperimentPreset;
use fnas::search::{BatchOptions, SearchConfig, SearchOutcome, Searcher};
use fnas_controller::space::SearchSpace;
use fnas_data::SynthConfig;

/// A CPU-sized preset: 10×10 images, 4 classes, 2-layer children.
fn tiny_preset() -> ExperimentPreset {
    let dataset = SynthConfig::mnist_like()
        .with_shape((1, 10, 10))
        .with_classes(4)
        .with_noise(0.15)
        .with_sizes(60, 30);
    let space = SearchSpace::new(2, vec![3, 5], vec![6, 12]).expect("valid space");
    ExperimentPreset::mnist()
        .with_trials(8)
        .with_epochs(3)
        .with_dataset(dataset)
        .with_space(space)
}

/// Everything a run's observable outcome consists of: the deployed
/// architecture, the full per-trial trace (arch, reward, latency bits,
/// trained flag) and the exact search-cost totals.
type Fingerprint = (
    Option<String>,
    Vec<(String, u32, Option<u64>, bool)>,
    u64,
    u64,
);

fn fingerprint(out: &SearchOutcome) -> Fingerprint {
    (
        out.best().map(|b| b.arch.describe()),
        out.trials()
            .iter()
            .map(|t| {
                (
                    t.arch.describe(),
                    t.reward.to_bits(),
                    t.latency.map(|l| l.get().to_bits()),
                    t.trained,
                )
            })
            .collect(),
        out.cost().training_seconds.to_bits(),
        out.cost().analyzer_seconds.to_bits(),
    )
}

fn run_trained(workers: usize) -> SearchOutcome {
    let preset = tiny_preset();
    let config = SearchConfig::fnas(preset.clone(), 2.0).with_seed(33);
    let evaluator = TrainedEvaluator::new(preset.dataset(), preset.epochs(), 8).expect("generates");
    let mut searcher =
        Searcher::with_evaluator(&config, Box::new(evaluator)).expect("constructible");
    let opts = BatchOptions::sequential()
        .with_workers(workers)
        .with_batch_size(4);
    searcher.run_batched(&config, &opts).expect("runs")
}

#[test]
fn trained_search_is_bit_identical_across_worker_counts() {
    let sequential = fingerprint(&run_trained(0));
    assert!(
        !sequential.1.is_empty(),
        "the run must explore at least one child"
    );
    for workers in [1usize, 2, 8] {
        assert_eq!(
            fingerprint(&run_trained(workers)),
            sequential,
            "workers = {workers}"
        );
    }
}

#[test]
fn surrogate_search_is_bit_identical_across_worker_counts() {
    let run = |workers: usize| {
        let config =
            SearchConfig::fnas(ExperimentPreset::mnist().with_trials(24), 5.0).with_seed(101);
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(8);
        Searcher::surrogate(&config)
            .expect("constructible")
            .run_batched(&config, &opts)
            .expect("runs")
    };
    let sequential = fingerprint(&run(0));
    for workers in [1usize, 2, 8] {
        assert_eq!(
            fingerprint(&run(workers)),
            sequential,
            "workers = {workers}"
        );
    }
}

#[test]
fn telemetry_counters_are_worker_independent() {
    // Wall times legitimately differ; every counter must not.
    let counters = |workers: usize| {
        let t = *run_trained(workers).telemetry();
        (
            t.children_sampled,
            t.children_pruned,
            t.children_trained,
            t.children_unbuildable,
            t.episodes,
            t.train_calls,
        )
    };
    let sequential = counters(0);
    for workers in [2usize, 8] {
        assert_eq!(counters(workers), sequential, "workers = {workers}");
    }
}

#[test]
fn repeated_identical_runs_agree() {
    // Same worker count twice: the engine holds no hidden global state.
    assert_eq!(fingerprint(&run_trained(2)), fingerprint(&run_trained(2)));
}
