//! The serve contract, end to end over real TCP: one `fnas-serve`
//! daemon multiplexing many concurrent search jobs over one
//! job-agnostic worker fleet.
//!
//! The claims under test:
//!
//! 1. **Per-job byte identity.** Two differently-specced jobs submitted
//!    to one server and run by one shared fleet — with a worker killed
//!    mid-round — each finish with a merged checkpoint byte-identical
//!    to a solo [`fnas_coord::run_rounds_local`] run of the same job.
//!    Multi-tenancy decides who computes what when; it can never change
//!    what either job's answer is.
//! 2. **Status from bytes.** `JobStatus` is answered from the progress
//!    snapshot the server last published to the store, so it decodes
//!    and names the right job even while rounds are in flight, and the
//!    artifacts survive the server's exit.
//! 3. **Backpressure is honest.** A submit-saturated endpoint
//!    (`--max-buffered-rounds` worth of payloads already admitted)
//!    answers `Retry`, both sides count it (coordinator telemetry and
//!    worker report), and the deferred resubmission settles
//!    byte-identically once a slot frees.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fnas::experiment::ExperimentPreset;
use fnas::search::{BatchOptions, SearchConfig, ShardSpec};
use fnas_coord::framing::{read_frame, write_frame};
use fnas_coord::{
    init_for_round, run_fleet_worker, run_round_shard, run_rounds_local, run_worker, Clock,
    Coordinator, CoordinatorOptions, LeasePolicy, Request, Response, WallClock, WorkerOptions,
    JOB_STATE_CANCELLED, JOB_STATE_RUNNING,
};
use fnas_serve::{client, JobProgress, JobState, ServeOptions, Server};
use fnas_store::Store;

const SHARDS: u32 = 2;
const ROUNDS: u64 = 2;
const BATCH: u32 = 3;

/// Job A: the usual worked-example search.
fn cfg_a() -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 10.0).with_seed(77)
}

/// Job B: a genuinely different search (tighter latency budget,
/// different seed), so cross-job leakage could not possibly merge
/// cleanly.
fn cfg_b() -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 9.0).with_seed(41)
}

fn opts() -> BatchOptions {
    BatchOptions::default()
        .with_batch_size(BATCH as usize)
        .with_workers(0)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One raw request–response exchange (panicking flavour of
/// [`client::rpc`] for protocol steps a test script controls fully).
fn rpc(addr: &str, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &request.to_bytes()).unwrap();
    Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap()
}

/// Polls with the fleet verb, takes whatever assignment the scheduler
/// offers, and vanishes without heartbeating or submitting — the
/// wire-level shape of a fleet worker killed mid-round. Returns which
/// job's shard died with it.
fn desert_one_fleet_assignment(addr: &str) -> (u64, u64, u32) {
    let response = rpc(
        addr,
        &Request::PollAny {
            worker: "deserter".to_string(),
        },
    );
    match response {
        Response::Assign {
            round, shard, job, ..
        } => (job, round, shard),
        other => panic!("deserter expected an assignment, got {other:?}"),
    }
}

fn accepted_job(response: Response) -> u64 {
    match response {
        Response::JobAccepted { job } => job,
        other => panic!("expected JobAccepted, got {other:?}"),
    }
}

/// Two interleaved jobs on one fleet — with a worker killed mid-round
/// and a third job cancelled at admission — each finish byte-identical
/// to their solo runs, and the published artifacts carry the whole
/// story after the server is gone.
#[test]
fn two_jobs_one_fleet_match_solo_runs_byte_identical_with_worker_kill() {
    let dir = tmp("two-jobs");
    let ref_a = run_rounds_local(&cfg_a(), &opts(), SHARDS, ROUNDS, &dir.join("ref-a"))
        .unwrap()
        .to_bytes();
    let ref_b = run_rounds_local(&cfg_b(), &opts(), SHARDS, ROUNDS, &dir.join("ref-b"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut lease = LeasePolicy::with_ttl_ms(300);
    lease.straggle_after_ms = 150;
    let serve_opts = ServeOptions {
        max_jobs: 4,
        expect_jobs: 3,
        quantum: 1,
        backoff_ms: 20,
        linger_ms: 1_500,
        lease,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let root = dir.join("serve");
    let server = Arc::new(Server::new(&root, serve_opts, clock).unwrap());
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run(listener))
    };

    // Admit jobs A and B, plus a job C that is cancelled before any
    // worker exists — its scheduler entry must stop assigning without
    // disturbing the jobs that stay.
    let cfg_c = SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 8.0).with_seed(5);
    let job_a =
        accepted_job(client::submit_job(&addr, cfg_a().job(), BATCH, SHARDS, ROUNDS).unwrap());
    let job_b =
        accepted_job(client::submit_job(&addr, cfg_b().job(), BATCH, SHARDS, ROUNDS).unwrap());
    let job_c =
        accepted_job(client::submit_job(&addr, cfg_c.job(), BATCH, SHARDS, ROUNDS).unwrap());
    assert_eq!(job_a, cfg_a().job().job_digest());
    assert_ne!(job_a, job_b);

    // Status answers from published bytes while everything is in flight.
    match client::job_status(&addr, job_a).unwrap() {
        Response::JobInfo {
            job,
            state,
            progress,
        } => {
            assert_eq!((job, state), (job_a, JOB_STATE_RUNNING));
            let p = JobProgress::decode(&progress).unwrap();
            assert_eq!((p.job, p.rounds, p.shards), (job_a, ROUNDS, SHARDS));
        }
        other => panic!("expected JobInfo, got {other:?}"),
    }
    match client::list_jobs(&addr).unwrap() {
        Response::Jobs { jobs } => assert_eq!(
            jobs,
            vec![
                (job_a, JOB_STATE_RUNNING),
                (job_b, JOB_STATE_RUNNING),
                (job_c, JOB_STATE_RUNNING)
            ]
        ),
        other => panic!("expected Jobs, got {other:?}"),
    }
    assert_eq!(
        client::cancel_job(&addr, job_c).unwrap(),
        Response::Cancelled { job: job_c }
    );
    match client::job_status(&addr, job_c).unwrap() {
        Response::JobInfo { state, .. } => assert_eq!(state, JOB_STATE_CANCELLED),
        other => panic!("expected JobInfo, got {other:?}"),
    }

    // The first fleet assignment is taken and abandoned mid-round.
    let (deserted_job, deserted_round, _) = desert_one_fleet_assignment(&addr);
    assert!(deserted_job == job_a || deserted_job == job_b);
    assert_eq!(deserted_round, 0);

    // One shared, job-agnostic fleet serves whatever is scheduled.
    let workers: Vec<_> = ["f1", "f2", "f3"]
        .into_iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr.clone(), name, dir.join(name));
            w.heartbeat_ms = 50;
            std::thread::spawn(move || run_fleet_worker(&opts(), &w))
        })
        .collect();

    serve.join().unwrap().unwrap();
    let mut fresh = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        assert!(
            report.shards_run > 0,
            "every fleet worker should contribute"
        );
        fresh += report.fresh_results;
    }
    // Every settled shard of both jobs was earned fresh by a live
    // worker: the deserter never submitted, job C never dispatched.
    assert_eq!(fresh, 2 * u64::from(SHARDS) * ROUNDS);

    // Byte identity per job, straight from the artifacts the server
    // published — the same files `jobs/<digest>/merged.ckpt` a solo
    // `fnas-coord` checkpoint would be compared against.
    let store = server.store();
    assert_eq!(store.get_artifact(job_a, "merged.ckpt").unwrap(), ref_a);
    assert_eq!(store.get_artifact(job_b, "merged.ckpt").unwrap(), ref_b);
    assert_eq!(store.get_artifact(job_c, "merged.ckpt"), None);
    assert_eq!(server.job_state(job_a), Some(JobState::Finished));
    assert_eq!(server.job_state(job_b), Some(JobState::Finished));
    assert_eq!(server.job_state(job_c), Some(JobState::Cancelled));

    // The final progress snapshots tell the whole story, including the
    // lease machinery recovering the deserted shard.
    let progress =
        |job| JobProgress::decode(&store.get_artifact(job, "progress.bin").unwrap()).unwrap();
    let (pa, pb) = (progress(job_a), progress(job_b));
    for p in [&pa, &pb] {
        assert!(p.finished, "{p}");
        assert_eq!((p.rounds_merged, p.rounds), (ROUNDS, ROUNDS), "{p}");
        assert_eq!(p.trials_done, 12 * ROUNDS, "{p}");
    }
    assert!(
        pa.leases_expired + pa.shards_redispatched + pb.leases_expired + pb.shards_redispatched
            >= 1,
        "the deserted shard was never recovered: {pa} / {pb}"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

/// A small single-shard job for the saturation tests.
fn small_cfg(seed: u64) -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(6), 10.0).with_seed(seed)
}

/// A submit-saturated coordinator answers `Retry` over real TCP, counts
/// it, and accepts the byte-identical resubmission once the buffered
/// payload drains — the deferred result is delayed, never changed.
#[test]
fn saturated_submit_is_answered_retry_and_resubmission_settles() {
    let dir = tmp("retry");
    let cfg = small_cfg(9);
    let reference = run_rounds_local(&cfg, &opts(), 1, 1, &dir.join("local"))
        .unwrap()
        .to_bytes();
    let init = init_for_round(&cfg, 0, None).unwrap();
    let bytes = run_round_shard(
        &cfg,
        0,
        ShardSpec::new(0, 1).unwrap(),
        &init,
        &opts(),
        &dir.join("pre.ckpt"),
    )
    .unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord_opts = CoordinatorOptions {
        shards: 1,
        rounds: 1,
        lease: LeasePolicy::with_ttl_ms(5_000),
        backoff_ms: 35,
        linger_ms: 1_000,
        max_buffered_rounds: 1,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(cfg.clone(), BATCH as usize, coord_opts, clock).unwrap());
    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };

    // Saturate the submit budget: `--max-buffered-rounds 1` × 1 shard
    // means exactly one in-flight payload, and it is held here.
    let slot = coord.try_admit_submit().unwrap();
    assert!(coord.try_admit_submit().is_none(), "cap should be 1");

    let submit = Request::Submit {
        worker: "pilot".to_string(),
        round: 0,
        shard: 0,
        epoch: coord.epoch(),
        job: coord.job(),
        fingerprint: coord.fingerprint(),
        bytes,
    };
    assert_eq!(rpc(&addr, &submit), Response::Retry { backoff_ms: 35 });
    let t = coord.telemetry().snapshot();
    assert_eq!((t.retries_served, t.retry_sleep_ms), (1, 35));

    drop(slot);
    assert_eq!(rpc(&addr, &submit), Response::Accepted { fresh: true });
    let merged = serve.join().unwrap().unwrap();
    assert_eq!(merged.to_bytes(), reference);
    std::fs::remove_dir_all(dir).unwrap();
}

/// A live worker rides out submit saturation on its own: it keeps the
/// computed result, honours the advised backoff (metered in its
/// report), resubmits when the coordinator frees a slot, and the run
/// still matches the sequential reference byte for byte.
#[test]
fn worker_rides_out_submit_saturation_and_meters_the_backoff() {
    let dir = tmp("retry-worker");
    let cfg = small_cfg(13);
    let reference = run_rounds_local(&cfg, &opts(), 1, 1, &dir.join("local"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord_opts = CoordinatorOptions {
        shards: 1,
        rounds: 1,
        lease: LeasePolicy::with_ttl_ms(5_000),
        backoff_ms: 35,
        linger_ms: 1_000,
        max_buffered_rounds: 1,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(cfg.clone(), BATCH as usize, coord_opts, clock).unwrap());
    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };
    let slot = coord.try_admit_submit().unwrap();

    let worker = {
        let mut w = WorkerOptions::new(addr.clone(), "patient", dir.join("patient"));
        w.heartbeat_ms = 50;
        let cfg = cfg.clone();
        std::thread::spawn(move || run_worker(&cfg, &opts(), &w, 1, 1))
    };

    // Hold the slot until the worker has demonstrably been deferred at
    // least once, then let it through — event-driven, not timed.
    let deadline = Instant::now() + Duration::from_secs(30);
    while coord.telemetry().snapshot().retries_served == 0 {
        assert!(Instant::now() < deadline, "worker never hit the cap");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(slot);

    let merged = serve.join().unwrap().unwrap();
    let report = worker.join().unwrap().unwrap();
    assert_eq!(merged.to_bytes(), reference);
    assert_eq!(report.fresh_results, 1);
    assert!(report.retries_served >= 1, "{report:?}");
    assert!(
        report.retry_sleep_ms >= 10,
        "advised backoff must be metered: {report:?}"
    );
    std::fs::remove_dir_all(dir).unwrap();
}
