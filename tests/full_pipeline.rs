//! End-to-end integration: the complete FNAS loop with *real* training.
//!
//! Exercises every crate together: synthetic data generation → RNN
//! controller sampling → FPGA design/analysis → pruning decision → child
//! training with the from-scratch engine → Eq. (1) reward → REINFORCE
//! update → deployment selection.

use fnas::evaluator::TrainedEvaluator;
use fnas::experiment::ExperimentPreset;
use fnas::search::{SearchConfig, SearchMode, Searcher};
use fnas_controller::space::SearchSpace;
use fnas_data::SynthConfig;
use fnas_fpga::Millis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A CPU-sized preset: 10×10 images, 4 classes, 3-layer children.
fn tiny_preset() -> ExperimentPreset {
    let dataset = SynthConfig::mnist_like()
        .with_shape((1, 10, 10))
        .with_classes(4)
        .with_noise(0.15)
        .with_sizes(80, 40);
    let space = SearchSpace::new(2, vec![3, 5], vec![6, 12]).expect("valid space");
    ExperimentPreset::mnist()
        .with_trials(5)
        .with_epochs(4)
        .with_dataset(dataset)
        .with_space(space)
}

#[test]
fn fnas_with_real_training_deploys_a_spec_satisfying_child() {
    let preset = tiny_preset();
    let config = SearchConfig::fnas(preset.clone(), 2.0).with_seed(5);
    let evaluator =
        TrainedEvaluator::new(preset.dataset(), preset.epochs(), 16).expect("generates");
    let mut searcher =
        Searcher::with_evaluator(&config, Box::new(evaluator)).expect("constructible");
    let mut rng = StdRng::seed_from_u64(5);
    let outcome = searcher.run(&config, &mut rng).expect("runs");

    assert_eq!(outcome.trials().len(), 5);
    // Everything trained must carry an accuracy from the real trainer.
    for t in outcome.trials() {
        if t.trained {
            let acc = t.accuracy.expect("trained children have accuracies");
            assert!((0.0..=1.0).contains(&acc));
        }
    }
    if let Some(best) = outcome.best() {
        assert!(best.meets(Millis::new(2.0)));
        // Better than random guessing over 4 classes.
        assert!(
            best.accuracy.expect("trained") > 0.3,
            "accuracy {:?}",
            best.accuracy
        );
    }
}

#[test]
fn nas_and_fnas_explore_the_same_space_but_account_costs_differently() {
    let preset = tiny_preset();
    let mut rng = StdRng::seed_from_u64(9);
    let nas_cfg = SearchConfig::nas(preset.clone()).with_seed(9);
    let nas = Searcher::surrogate(&nas_cfg)
        .expect("constructible")
        .run(&nas_cfg, &mut rng)
        .expect("runs");
    assert_eq!(nas.mode(), SearchMode::Nas);
    assert_eq!(nas.pruned_count(), 0, "plain NAS never prunes");
    assert!(
        nas.cost().analyzer_seconds == 0.0,
        "NAS never pays the FNAS tool"
    );

    let fnas_cfg = SearchConfig::fnas(preset, 0.001).with_seed(9); // brutally tight: 1 µs
    let fnas = Searcher::surrogate(&fnas_cfg)
        .expect("constructible")
        .run(&fnas_cfg, &mut rng)
        .expect("runs");
    assert!(fnas.cost().analyzer_seconds > 0.0);
    // A 1 µs budget prunes everything in this space…
    assert_eq!(fnas.pruned_count(), fnas.trials().len());
    // …and therefore costs almost nothing compared to NAS.
    assert!(fnas.cost().total_seconds() < nas.cost().total_seconds() / 10.0);
}

#[test]
fn violated_children_carry_the_eq1_negative_reward() {
    let preset = tiny_preset();
    let config = SearchConfig::fnas(preset, 0.001).with_seed(13);
    let mut rng = StdRng::seed_from_u64(13);
    let outcome = Searcher::surrogate(&config)
        .expect("constructible")
        .run(&config, &mut rng)
        .expect("runs");
    for t in outcome.trials() {
        let latency = t.latency.expect("tiny space is always designable");
        // Eq. (1): R = (rL − L)/rL − 1 = −L/rL.
        let expected = -(latency.get() / 0.001) as f32;
        let tolerance = expected.abs() * 1e-4 + 1e-3;
        assert!(
            (t.reward - expected).abs() < tolerance,
            "reward {} vs expected {expected}",
            t.reward
        );
    }
}

#[test]
fn search_is_deterministic_end_to_end() {
    let run = || {
        let preset = tiny_preset();
        let config = SearchConfig::fnas(preset, 1.0).with_seed(21);
        let mut rng = StdRng::seed_from_u64(21);
        Searcher::surrogate(&config)
            .expect("constructible")
            .run(&config, &mut rng)
            .expect("runs")
            .trials()
            .iter()
            .map(|t| {
                (
                    t.arch.describe(),
                    t.latency.map(|l| l.get().to_bits()),
                    t.reward.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
