//! Property-based tests over the core data structures and invariants.

use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::FpgaDevice;
use fnas_fpga::layer::{ConvShape, Network};
use fnas_fpga::sched::{FixedScheduler, FnasScheduler};
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;
use fnas_nn::loss::softmax_cross_entropy;
use fnas_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a random small conv pipeline (1–4 layers).
fn arb_network() -> impl Strategy<Value = Network> {
    (
        1usize..=4,
        prop::collection::vec(
            (1usize..=24, prop_oneof![Just(1usize), Just(3), Just(5)]),
            4,
        ),
        8usize..=20,
    )
        .prop_map(|(depth, specs, extent)| {
            let mut layers = Vec::new();
            let mut prev = 3usize;
            for &(filters, kernel) in specs.iter().take(depth) {
                layers.push(
                    ConvShape::square(prev, filters, extent, kernel).expect("non-zero extents"),
                );
                prev = filters;
            }
            Network::new(layers).expect("chained channels")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tensor addition is commutative and subtraction is its inverse.
    #[test]
    fn tensor_add_sub_roundtrip(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n][..]).expect("matching length");
        let b = Tensor::from_vec(data.iter().map(|x| x * 0.5 + 1.0).collect(), &[n][..])
            .expect("matching length");
        let ab = a.add(&b).expect("same shape");
        let ba = b.add(&a).expect("same shape");
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        let back = ab.sub(&b).expect("same shape");
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Matmul distributes over identity padding: (A·I) = A for any A.
    #[test]
    fn matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let a = Tensor::from_vec(data, &[rows, cols][..]).expect("matching length");
        let id = Tensor::eye(cols);
        let prod = a.matmul(&id).expect("compatible");
        prop_assert_eq!(prod.as_slice(), a.as_slice());
    }

    /// Softmax cross-entropy: loss ≥ 0 and gradient rows sum to ~0.
    #[test]
    fn softmax_ce_invariants(
        batch in 1usize..5,
        classes in 2usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits = Tensor::from_vec(
            (0..batch * classes).map(|_| rng.gen_range(-5.0..5.0)).collect(),
            &[batch, classes][..],
        ).expect("matching length");
        let labels: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..classes)).collect();
        let out = softmax_cross_entropy(&logits, &labels).expect("valid labels");
        prop_assert!(out.loss >= 0.0);
        for row in out.grad.as_slice().chunks_exact(classes) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// Any generated design fits its device and yields a consistent graph:
    /// DSP budget respected, harmonised spatial grid, task counts matching.
    #[test]
    fn designs_respect_resources(net in arb_network()) {
        let device = FpgaDevice::pynq();
        let design = PipelineDesign::generate(&net, &device).expect("pynq fits small nets");
        let dsp: usize = design.layers().iter().map(|l| l.tiling().dsp_slices()).sum();
        prop_assert!(dsp <= device.dsp_slices());
        let graph = TileTaskGraph::from_design(&design).expect("harmonised grid");
        for (lt, ld) in graph.layers().iter().zip(design.layers()) {
            prop_assert_eq!(lt.task_count(), ld.task_count());
        }
    }

    /// For every random pipeline: both schedulers complete, the FNAS
    /// schedule never loses to fixed scheduling, and the analyzer
    /// lower-bounds the simulated makespan.
    #[test]
    fn scheduling_invariants(net in arb_network()) {
        let device = FpgaDevice::pynq();
        let design = PipelineDesign::generate(&net, &device).expect("pynq fits small nets");
        let graph = TileTaskGraph::from_design(&design).expect("harmonised grid");
        let fnas = simulate_design(&design, &graph, &FnasScheduler::new().schedule(&graph))
            .expect("completes");
        let fixed = simulate_design(&design, &graph, &FixedScheduler::new().schedule(&graph))
            .expect("completes");
        // Greedy ready-queue dispatch can occupy a PE for up to one task
        // when the critical tile unblocks, so FNAS is not *strictly*
        // dominant on arbitrary tiny pipelines — but it must never lose by
        // more than one task per layer (and it wins decisively on the
        // paper's Fig. 8 workloads; see the fig8 harness).
        let slack: u64 = graph.layers().iter().map(|l| l.et.get()).max().unwrap_or(0)
            * graph.num_layers() as u64;
        prop_assert!(fnas.makespan.get() <= fixed.makespan.get() + slack,
            "fnas {} vs fixed {} (+{} slack)", fnas.makespan, fixed.makespan, slack);
        let report = fnas_fpga::analyzer::analyze(&design).expect("analyzable");
        prop_assert!(report.latency_cycles <= fnas.makespan,
            "analyzer {} vs sim {}", report.latency_cycles, fnas.makespan);
        // Busy time is schedule-independent: every task runs exactly once.
        for (a, b) in fnas.pes.iter().zip(&fixed.pes) {
            prop_assert_eq!(a.busy, b.busy);
        }
    }

    /// The two convolution algorithms agree on forward outputs and on all
    /// gradients for arbitrary geometry.
    #[test]
    fn conv_algorithms_agree(
        ci in 1usize..4,
        co in 1usize..5,
        k in prop_oneof![Just(1usize), Just(2), Just(3), Just(5)],
        stride in 1usize..3,
        seed in 0u64..500,
    ) {
        use fnas_nn::layer::{Conv2d, ConvAlgo, Layer};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pad = (k - 1) / 2;
        let mut direct = Conv2d::new(ci, co, k, stride, pad, &mut rng)
            .expect("valid config")
            .with_algo(ConvAlgo::Direct);
        let mut lowered = Conv2d::new(ci, co, k, stride, pad, &mut rng)
            .expect("valid config")
            .with_algo(ConvAlgo::Im2col);
        // Same parameters in both layers (copy via visit_params).
        let mut params = Vec::new();
        direct.visit_params(&mut |p| params.push(p.value.clone()));
        let mut i = 0;
        lowered.visit_params(&mut |p| {
            *p.value = params[i].clone();
            i += 1;
        });
        let x = Tensor::rand_uniform([2, ci, 6, 6], -1.0, 1.0, &mut rng);
        let ya = direct.forward(&x).expect("fits");
        let yb = lowered.forward(&x).expect("fits");
        prop_assert_eq!(ya.shape(), yb.shape());
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "forward {} vs {}", a, b);
        }
        let go = Tensor::rand_uniform(ya.shape().clone(), -1.0, 1.0, &mut rng);
        direct.zero_grad();
        lowered.zero_grad();
        let ga = direct.backward(&go).expect("cached");
        let gb = lowered.backward(&go).expect("cached");
        for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "input grad {} vs {}", a, b);
        }
    }

    /// Deployment reports stay internally consistent on random MNIST-space
    /// architectures: the analyzer lower-bounds the simulation and resources
    /// fit the platform.
    #[test]
    fn deployment_reports_are_consistent(seed in 0u64..200) {
        use fnas::deploy::DeploymentReport;
        use fnas_controller::arch::ChildArch;
        use fnas_controller::space::SearchSpace;
        use fnas_fpga::device::FpgaCluster;
        use rand::{Rng, SeedableRng};
        let space = SearchSpace::mnist();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..space.num_decisions())
            .map(|t| rng.gen_range(0..space.options(t).len()))
            .collect();
        let arch = ChildArch::from_indices(&space, &indices).expect("in range");
        let platform = FpgaCluster::single(FpgaDevice::pynq());
        let report = DeploymentReport::generate(&arch, &platform, (1, 28, 28))
            .expect("mnist space is always deployable on the pynq");
        prop_assert!(report.model_gap() >= -1e-6);
        prop_assert!(report.model_gap() < 0.30, "gap {}", report.model_gap());
        let u = report.utilization();
        prop_assert!(u.dsp_used <= u.dsp_available);
        prop_assert!(u.bram_used <= u.bram_available);
    }

    /// The sharded memo cache is transparent: a latency served through a
    /// shared (possibly warm) evaluator is always bit-identical to a fresh
    /// analyzer call on a brand-new evaluator — caching can never change a
    /// result, only skip recomputation.
    #[test]
    fn sharded_latency_cache_matches_fresh_analysis(seed in 0u64..200) {
        use fnas::latency::LatencyEvaluator;
        use fnas_controller::arch::ChildArch;
        use fnas_controller::space::SearchSpace;
        use rand::{Rng, SeedableRng};
        let space = SearchSpace::mnist();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shared = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
        for _ in 0..8 {
            let indices: Vec<usize> = (0..space.num_decisions())
                .map(|t| rng.gen_range(0..space.options(t).len()))
                .collect();
            let arch = ChildArch::from_indices(&space, &indices).expect("in range");
            let first = shared.latency(&arch).expect("mnist space is designable");
            let cached = shared.latency(&arch).expect("mnist space is designable");
            let fresh = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28))
                .latency(&arch)
                .expect("mnist space is designable");
            prop_assert_eq!(first.get().to_bits(), fresh.get().to_bits());
            prop_assert_eq!(cached.get().to_bits(), fresh.get().to_bits());
        }
        // The second lookup of each architecture must have been a hit.
        prop_assert!(shared.cache_hits() >= 8);
    }

    /// Synthetic datasets: labels cycle, batches partition, tensors finite.
    #[test]
    fn dataset_batches_partition(train in 1usize..40, batch in 1usize..10) {
        use fnas_data::{SynthConfig, SynthDataset};
        let config = SynthConfig::mnist_like()
            .with_shape((1, 6, 6))
            .with_classes(3)
            .with_sizes(train, 4);
        let d = SynthDataset::generate(&config).expect("valid config");
        let batches = d.train().batches(batch).expect("non-zero batch");
        let total: usize = batches.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, train);
        for b in &batches {
            prop_assert!(b.images.as_slice().iter().all(|x| x.is_finite()));
            prop_assert!(b.labels.iter().all(|&l| l < 3));
        }
    }
}

/// Raw generated state for one shard checkpoint: controller params,
/// (baseline present?, baseline value), per-trial specs
/// (filter size, filter count, reward, trained?), RNG words, and
/// (episode, training cost, analyzer cost, children sampled).
type RawShard = (
    Vec<f32>,
    (u32, f32),
    Vec<(usize, usize, f32, u32)>,
    Vec<u64>,
    (u64, u64, u64, u64),
);

fn raw_shard() -> impl Strategy<Value = RawShard> {
    (
        prop::collection::vec(-2.0f32..2.0, 4),
        (0u32..2, 0.0f32..1.0),
        prop::collection::vec((1usize..=7, 1usize..=64, -3.0f32..3.0, 0u32..2), 0..5),
        prop::collection::vec(0u64..=u64::MAX, 4),
        (0u64..100, 0u64..500, 0u64..500, 0u64..1000),
    )
}

/// One plausible shard checkpoint of an `n`-shard run. The controller
/// shape is fixed (4 params, one moment slot) so generated shards are
/// mergeable; everything else — float state, counters, trials — varies.
fn shard_from(index: u32, count: u32, raw: RawShard) -> fnas::checkpoint::SearchCheckpoint {
    use fnas::checkpoint::SearchCheckpoint;
    use fnas::cost::SearchCost;
    use fnas::search::TrialRecord;
    use fnas_controller::arch::{ChildArch, LayerChoice};
    use fnas_controller::reinforce::TrainerState;
    use fnas_exec::TelemetrySnapshot;
    use fnas_nn::optim::AdamState;

    let (
        params,
        (has_baseline, baseline),
        trial_specs,
        rng,
        (episode, train_s, analyzer_s, sampled),
    ) = raw;
    let trials = trial_specs
        .into_iter()
        .enumerate()
        .map(|(i, (filter, filters, reward, trained))| TrialRecord {
            index: i,
            arch: ChildArch::new(vec![LayerChoice {
                filter_size: filter,
                num_filters: filters,
            }])
            .expect("non-empty layer list"),
            latency: None,
            accuracy: (trained == 1).then_some(0.5),
            reward,
            trained: trained == 1,
        })
        .collect();
    SearchCheckpoint {
        shard_index: index,
        shard_count: count,
        parent_seed: 0xABCD,
        round: 1,
        job: Default::default(),
        run_seed: 0x1000 + u64::from(index),
        next_episode: episode,
        rng_state: [rng[0], rng[1], rng[2], rng[3]],
        baseline: (has_baseline == 1).then_some(baseline),
        cost: SearchCost {
            training_seconds: train_s as f64,
            analyzer_seconds: analyzer_s as f64,
        },
        trainer: TrainerState {
            params: params.clone(),
            // Moment presence varies with the baseline flag so the merge's
            // absent-slot path gets exercised alongside the averaging path.
            optimizer: AdamState {
                t: episode,
                moments: vec![(has_baseline == 1).then(|| (params.clone(), params.clone()))],
            },
            updates: episode,
        },
        telemetry: TelemetrySnapshot {
            children_sampled: sampled,
            episodes: episode,
            ..TelemetrySnapshot::default()
        },
        trials,
    }
}

proptest! {
    // These cases are heavier (10k RNG draws per shard stream, full codec
    // round trips), so run fewer of them.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hierarchical shard seeding: across 16 shards of any parent run, the
    /// first 10 000 draws of every shard stream are pairwise disjoint —
    /// no shard replays a window of another shard's randomness, and none
    /// replays the parent stream either.
    #[test]
    fn shard_rng_streams_do_not_overlap(run_seed in 0u64..=u64::MAX) {
        use fnas_exec::derive_shard_seed;
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        use std::collections::HashMap;

        const SHARDS: u64 = 16;
        const DRAWS: usize = 10_000;
        let seeds: Vec<u64> = (0..SHARDS).map(|i| derive_shard_seed(run_seed, i)).collect();
        // The seeds themselves are pairwise distinct and never the parent.
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), SHARDS as usize);
        prop_assert!(!seeds.contains(&run_seed));

        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut streams: Vec<StdRng> = std::iter::once(run_seed)
            .chain(seeds)
            .map(StdRng::seed_from_u64)
            .collect();
        for (stream, rng) in streams.iter_mut().enumerate() {
            for _ in 0..DRAWS {
                let draw = rng.next_u64();
                if let Some(&other) = seen.get(&draw) {
                    prop_assert!(
                        other == stream,
                        "streams {} and {} both produced {:#x}", other, stream, draw
                    );
                }
                seen.insert(draw, stream);
            }
        }
    }

    /// `SearchCheckpoint::merge` commutes with the codec: merging shards
    /// that went through a serialize/deserialize round trip produces the
    /// same checkpoint as merging the originals, and the merged result
    /// itself round-trips exactly.
    #[test]
    fn checkpoint_merge_round_trips_through_the_codec(
        count in 1u32..=4,
        raws in prop::collection::vec(raw_shard(), 4),
    ) {
        use fnas::checkpoint::SearchCheckpoint;

        let shards: Vec<SearchCheckpoint> = raws
            .into_iter()
            .take(count as usize)
            .enumerate()
            .map(|(i, raw)| shard_from(i as u32, count, raw))
            .collect();

        let reloaded: Vec<SearchCheckpoint> = shards
            .iter()
            .map(|s| SearchCheckpoint::from_bytes(&s.to_bytes()).expect("shard round trip"))
            .collect();
        for (orig, back) in shards.iter().zip(&reloaded) {
            prop_assert_eq!(orig, back);
        }

        let merged = SearchCheckpoint::merge(&shards).expect("well-formed shard set");
        let merged_from_reloaded =
            SearchCheckpoint::merge(&reloaded).expect("well-formed shard set");
        prop_assert_eq!(&merged, &merged_from_reloaded);

        let bytes = merged.to_bytes();
        let back = SearchCheckpoint::from_bytes(&bytes).expect("merged round trip");
        prop_assert_eq!(&back, &merged);
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}
