//! Determinism of episode-sharded search and checkpoint merge.
//!
//! Two contracts pinned here:
//!
//! * **Degeneration** — a 1-shard [`ShardRunner`] run against the shared
//!   init snapshot is **bit-identical** to the unsharded
//!   [`Searcher::run_batched_checkpointed`], at every worker count (0, 1,
//!   2, 8): same outcome fingerprint, byte-identical final checkpoint
//!   file. `--shard 0/1` is never a behaviour change.
//! * **Deterministic reduction** — two independent 4-shard sweeps produce
//!   byte-identical merged checkpoints, regardless of the order the shard
//!   files are handed to the merge.

use std::path::{Path, PathBuf};

use fnas::checkpoint::SearchCheckpoint;
use fnas::experiment::ExperimentPreset;
use fnas::search::{
    BatchOptions, CheckpointOptions, SearchConfig, SearchOutcome, Searcher, ShardRunner, ShardSpec,
};
use fnas_exec::derive_shard_seed;

fn config(trials: usize, seed: u64) -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(trials), 5.0).with_seed(seed)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-shard-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The observable outcome: deployed arch, full per-trial trace with exact
/// float bits, and exact cost totals.
type Fingerprint = (
    Option<String>,
    Vec<(String, u32, Option<u64>, bool)>,
    u64,
    u64,
);

fn fingerprint(out: &SearchOutcome) -> Fingerprint {
    (
        out.best().map(|b| b.arch.describe()),
        out.trials()
            .iter()
            .map(|t| {
                (
                    t.arch.describe(),
                    t.reward.to_bits(),
                    t.latency.map(|l| l.get().to_bits()),
                    t.trained,
                )
            })
            .collect(),
        out.cost().training_seconds.to_bits(),
        out.cost().analyzer_seconds.to_bits(),
    )
}

#[test]
fn one_shard_run_is_bit_identical_to_the_unsharded_engine() {
    let dir = temp_dir("degenerate");
    let config = config(24, 41);
    let init_path = dir.join("init.ckpt");
    ShardRunner::write_init(&config, &init_path).expect("init");

    for workers in [0usize, 1, 2, 8] {
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(6);

        let base_path = dir.join(format!("base-{workers}.ckpt"));
        let baseline = Searcher::surrogate(&config)
            .expect("constructible")
            .run_batched_checkpointed(&config, &opts, &CheckpointOptions::new(&base_path))
            .expect("runs");

        let shard_path = dir.join(format!("shard-{workers}.ckpt"));
        let runner = ShardRunner::new(config.clone(), ShardSpec::new(0, 1).expect("0/1"));
        let sharded = runner
            .run(&opts, &init_path, &CheckpointOptions::new(&shard_path))
            .expect("runs");

        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&baseline),
            "workers = {workers}"
        );
        // The hand-off artifact is byte-identical too: a 0/1 shard file is
        // indistinguishable from the unsharded engine's checkpoint.
        assert_eq!(
            std::fs::read(&shard_path).expect("shard file"),
            std::fs::read(&base_path).expect("baseline file"),
            "workers = {workers}"
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

fn run_sweep(dir: &Path, base: &SearchConfig, count: u32, workers: usize) -> Vec<PathBuf> {
    let init_path = dir.join("init.ckpt");
    ShardRunner::write_init(base, &init_path).expect("init");
    (0..count)
        .map(|i| {
            let path = dir.join(format!("shard-{i}-of-{count}.ckpt"));
            let spec = ShardSpec::new(i, count).expect("in range");
            let opts = BatchOptions::sequential()
                .with_workers(workers)
                .with_batch_size(3);
            ShardRunner::new(base.clone(), spec)
                .run(&opts, &init_path, &CheckpointOptions::new(&path))
                .expect("shard runs");
            path
        })
        .collect()
}

#[test]
fn four_shard_merge_is_byte_identical_across_independent_sweeps() {
    let base = config(24, 77);

    // Sweep A: shards run in order, merged in order, on a thread pool.
    let dir_a = temp_dir("sweep-a");
    let paths_a = run_sweep(&dir_a, &base, 4, 2);
    let merged_a = ShardRunner::merge_files(&paths_a).expect("merges");

    // Sweep B: an independent process's worth of state, different worker
    // count, shard files handed to the merge in scrambled order.
    let dir_b = temp_dir("sweep-b");
    let mut paths_b = run_sweep(&dir_b, &base, 4, 0);
    paths_b.rotate_left(2);
    paths_b.swap(0, 1);
    let merged_b = ShardRunner::merge_files(&paths_b).expect("merges");

    assert_eq!(merged_a.to_bytes(), merged_b.to_bytes());

    // The reduction really covered the whole budget, re-indexed.
    assert_eq!(merged_a.shard_index, 0);
    assert_eq!(merged_a.shard_count, 1);
    assert_eq!(merged_a.run_seed, base.seed());
    assert_eq!(merged_a.trials.len(), 24);
    for (i, t) in merged_a.trials.iter().enumerate() {
        assert_eq!(t.index, i);
    }

    std::fs::remove_dir_all(&dir_a).expect("cleanup");
    std::fs::remove_dir_all(&dir_b).expect("cleanup");
}

#[test]
fn shard_files_carry_their_stamp_and_foreign_inputs_are_rejected() {
    let dir = temp_dir("stamps");
    let base = config(10, 9);
    let paths = run_sweep(&dir, &base, 2, 0);

    // 10 trials over 2 shards: 5 + 5, each stamped with its identity and
    // its derived stream.
    for (i, path) in paths.iter().enumerate() {
        let ck = SearchCheckpoint::load(path).expect("loads");
        assert_eq!(ck.shard_index, i as u32);
        assert_eq!(ck.shard_count, 2);
        assert_eq!(ck.parent_seed, base.seed());
        assert_eq!(ck.run_seed, derive_shard_seed(base.seed(), i as u64));
        assert_eq!(ck.trials.len(), 5);
    }

    // Merging a partial shard set fails loudly.
    assert!(ShardRunner::merge_files(&paths[..1]).is_err());

    // A runner for a *different* run refuses the init snapshot.
    let stray = ShardRunner::new(config(10, 10), ShardSpec::new(0, 2).expect("0/2"));
    let init = SearchCheckpoint::load(&dir.join("init.ckpt")).expect("loads");
    let mut searcher = Searcher::surrogate(&config(10, 10)).expect("constructible");
    let err = stray
        .run_with(
            &mut searcher,
            &BatchOptions::sequential(),
            &init,
            &CheckpointOptions::new(dir.join("stray.ckpt")),
        )
        .expect_err("wrong seed must be rejected");
    assert!(err.to_string().contains("init snapshot"), "{err}");

    // More shards than trials is a config error, not a silent empty run.
    let crowded = ShardRunner::new(config(3, 9), ShardSpec::new(5, 6).expect("5/6"));
    assert!(crowded.config().is_err());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
