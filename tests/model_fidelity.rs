//! Model-fidelity integration tests: the analytic FNAS-Analyzer against the
//! cycle-level simulator across the real search spaces, plus platform
//! monotonicity properties the whole framework relies on.

use fnas::latency::LatencyEvaluator;
use fnas_controller::arch::ChildArch;
use fnas_controller::space::SearchSpace;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_arch(space: &SearchSpace, rng: &mut StdRng) -> ChildArch {
    let indices: Vec<usize> = (0..space.num_decisions())
        .map(|t| rng.gen_range(0..space.options(t).len()))
        .collect();
    ChildArch::from_indices(space, &indices).expect("indices are in range")
}

/// The analyzer must lower-bound the simulator and stay within 25% of it on
/// the MNIST space — the property that makes Eq. (5) usable as the pruning
/// oracle.
#[test]
fn analyzer_is_a_tight_lower_bound_across_the_mnist_space() {
    let space = SearchSpace::mnist();
    let mut rng = StdRng::seed_from_u64(31);
    let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
    for _ in 0..15 {
        let arch = random_arch(&space, &mut rng);
        let analytic = eval.latency(&arch).expect("designable");
        let simulated = eval.simulated_latency(&arch).expect("simulates");
        assert!(
            analytic.get() <= simulated.get() * 1.0001,
            "{}: analytic {analytic} exceeds simulated {simulated}",
            arch.describe()
        );
        assert!(
            simulated.get() <= analytic.get() * 1.25,
            "{}: bound too loose ({analytic} vs {simulated})",
            arch.describe()
        );
    }
}

/// The same property on the deeper CIFAR-10 space and the ZU9EG.
#[test]
fn analyzer_bound_holds_on_the_cifar_space() {
    let space = SearchSpace::cifar10();
    let mut rng = StdRng::seed_from_u64(32);
    let eval = LatencyEvaluator::new(FpgaDevice::zu9eg(), (3, 32, 32));
    for _ in 0..6 {
        let arch = random_arch(&space, &mut rng);
        let analytic = eval.latency(&arch).expect("designable");
        let simulated = eval.simulated_latency(&arch).expect("simulates");
        assert!(analytic.get() <= simulated.get() * 1.0001);
        assert!(
            simulated.get() <= analytic.get() * 1.35,
            "{}",
            arch.describe()
        );
    }
}

/// Widening a layer or deepening the network must never reduce latency.
#[test]
fn latency_is_monotone_in_architecture_size() {
    let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
    let space = SearchSpace::mnist();
    let base = ChildArch::from_indices(&space, &[0, 0, 0, 0, 0, 0, 0, 0]).expect("valid");
    let wider = ChildArch::from_indices(&space, &[0, 2, 0, 0, 0, 0, 0, 0]).expect("valid");
    let bigger_kernel = ChildArch::from_indices(&space, &[1, 0, 0, 0, 0, 0, 0, 0]).expect("valid");
    let l0 = eval.latency(&base).expect("designable").get();
    assert!(eval.latency(&wider).expect("designable").get() >= l0);
    assert!(eval.latency(&bigger_kernel).expect("designable").get() >= l0);
}

/// More boards must help a big pipeline (the paper's multi-FPGA premise)
/// as long as the inter-board link is not the bottleneck.
#[test]
fn clusters_accelerate_large_pipelines() {
    let space = SearchSpace::cifar10();
    let mut rng = StdRng::seed_from_u64(33);
    let arch = random_arch(&space, &mut rng);
    let single = LatencyEvaluator::new(FpgaDevice::pynq(), (3, 32, 32))
        .latency(&arch)
        .expect("designable")
        .get();
    let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), 4, 32.0).expect("valid");
    let quad = LatencyEvaluator::on_cluster(cluster, (3, 32, 32))
        .latency(&arch)
        .expect("designable")
        .get();
    assert!(
        quad < single,
        "4 boards ({quad} ms) should beat 1 board ({single} ms)"
    );
}

/// The caching contract: repeated queries are free and identical.
#[test]
fn latency_cache_is_transparent() {
    let space = SearchSpace::mnist();
    let mut rng = StdRng::seed_from_u64(34);
    let eval = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
    let archs: Vec<ChildArch> = (0..5).map(|_| random_arch(&space, &mut rng)).collect();
    let first: Vec<f64> = archs
        .iter()
        .map(|a| eval.latency(a).expect("designable").get())
        .collect();
    let calls = eval.analyzer_calls();
    let second: Vec<f64> = archs
        .iter()
        .map(|a| eval.latency(a).expect("designable").get())
        .collect();
    assert_eq!(first, second);
    assert_eq!(eval.analyzer_calls(), calls, "second pass must be cached");
}
