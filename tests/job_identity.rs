//! The job-identity contract (DESIGN.md §17), pinned.
//!
//! Three claims keep every layer honest about what a *job* is:
//!
//! 1. **The codec is injective.** Two [`JobSpec`]s share an encoding iff
//!    they are field-for-field the same submission — the property that
//!    makes "equal digests" mean "same search" (up to hash collisions).
//! 2. **The digest is pinned.** The committed constants below are the
//!    digests every `FNC1` request, WAL record and store namespace carry
//!    for these specs; silent codec or hash drift re-keys every artifact
//!    in the field and must fail CI, not pass quietly.
//! 3. **v3 checkpoints keep working.** A pre-job (`FNASCKPT` v3)
//!    snapshot loads as the pinned default job, and a run resumed from
//!    it is byte-identical to one resumed from the v4 original — at
//!    every evaluation worker count, because worker count never changes
//!    results.

use std::path::PathBuf;

use fnas::checkpoint::SearchCheckpoint;
use fnas::experiment::ExperimentPreset;
use fnas::job::{JobSpec, OracleBackend};
use fnas::search::{BatchOptions, CheckpointOptions, SearchConfig, ShardRunner, ShardSpec};
use proptest::prelude::*;

/// The digest of [`JobSpec::default`] — the identity every pre-v4
/// artifact inherits. Changing the codec, the hash, or the default spec
/// moves this constant; that is a breaking change and must look like one.
const PINNED_DEFAULT_DIGEST: u64 = 0x149B_8DF2_5625_52C6;

/// The digest of a fully-specified spec, covering every optional field's
/// encoding (device, rL, trials, seed, simulated backend).
const PINNED_FULL_DIGEST: u64 = 0x9727_4AF2_2809_961B;

fn full_spec() -> JobSpec {
    JobSpec::new("cifar-10")
        .with_device(Some("zu9eg".to_string()))
        .with_required_ms(Some(2.5))
        .with_trials(Some(24))
        .with_seed(Some(77))
        .with_backend(OracleBackend::Simulated)
}

#[test]
fn canonical_digests_are_pinned() {
    assert_eq!(
        JobSpec::default().job_digest(),
        PINNED_DEFAULT_DIGEST,
        "the default job re-keyed: every pre-v4 checkpoint, journal and \
         store namespace in the field changes identity"
    );
    assert_eq!(
        full_spec().job_digest(),
        PINNED_FULL_DIGEST,
        "the JobSpec codec or digest drifted for fully-specified specs"
    );
    // The digest is a pure function of the encoding.
    assert_eq!(
        JobSpec::decode(&full_spec().encode()).unwrap().job_digest(),
        PINNED_FULL_DIGEST
    );
}

/// The raw field tuple of a spec, with `rL` as IEEE-754 bits so NaN
/// payloads compare exactly the way the codec stores them.
type Parts = (
    String,
    Option<String>,
    Option<u64>,
    Option<usize>,
    Option<u64>,
    bool,
);

fn spec_of(p: &Parts) -> JobSpec {
    let mut spec = JobSpec::new(p.0.clone())
        .with_device(p.1.clone())
        .with_required_ms(p.2.map(f64::from_bits))
        .with_trials(p.3)
        .with_seed(p.4);
    if p.5 {
        spec = spec.with_backend(OracleBackend::Simulated);
    }
    spec
}

/// Name alphabet for generated preset/device strings.
const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

fn string_of(indices: Vec<usize>) -> String {
    indices.into_iter().map(|i| CHARS[i] as char).collect()
}

/// The vendored proptest shim has no `option::of`/`any`, so options are
/// generated as a presence tag plus a value drawn from the full domain
/// (`rL` bits cover every `f64`, NaNs and infinities included).
fn arb_parts() -> impl Strategy<Value = Parts> {
    (
        prop::collection::vec(0usize..CHARS.len(), 0usize..=8),
        (
            0u8..2,
            prop::collection::vec(0usize..CHARS.len(), 1usize..=6),
        ),
        (0u8..2, 0u64..=u64::MAX),
        (0u8..2, 0usize..1_000_000),
        (0u8..2, 0u64..=u64::MAX),
        0u8..2,
    )
        .prop_map(|(p, (dt, d), (mt, m), (tt, t), (st, s), b)| {
            (
                string_of(p),
                (dt == 1).then(|| string_of(d)),
                (mt == 1).then_some(m),
                (tt == 1).then_some(t),
                (st == 1).then_some(s),
                b == 1,
            )
        })
}

proptest! {
    /// Round-trip and canonical re-encode for arbitrary specs, and
    /// injectivity: encodings agree exactly when the submissions do.
    #[test]
    fn codec_round_trips_and_is_injective(a in arb_parts(), b in arb_parts()) {
        let (sa, sb) = (spec_of(&a), spec_of(&b));
        let (ea, eb) = (sa.encode(), sb.encode());
        let back = JobSpec::decode(&ea).expect("canonical bytes decode");
        prop_assert_eq!(back.encode(), ea.clone(), "re-encode is canonical");
        prop_assert_eq!(a == b, ea == eb, "encodings must separate exactly the distinct specs");
        if ea != eb {
            prop_assert_ne!(sa.job_digest(), sb.job_digest(),
                "distinct specs collided (astronomically unlikely unless the digest broke)");
        }
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-job-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Strips the v4 job block out of checkpoint bytes and stamps the
/// version word back to 3 — exactly what a pre-job writer produced.
fn downgrade_to_v3(v4: &[u8]) -> Vec<u8> {
    // magic(8) | version(4) | shard(8) | parent_seed(8) | round(8)
    let header_end = 8 + 4 + 4 + 4 + 8 + 8;
    let n = u64::from_le_bytes(v4[header_end..header_end + 8].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(v4.len() - 8 - n);
    out.extend_from_slice(&v4[..header_end]);
    out.extend_from_slice(&v4[header_end + 8 + n..]);
    out[8..12].copy_from_slice(&3u32.to_le_bytes());
    out
}

#[test]
fn v3_snapshots_load_as_the_default_job_and_resume_identically() {
    let dir = tmp("v3v4");
    let config = SearchConfig::fnas(ExperimentPreset::mnist().with_trials(8), 10.0).with_seed(5);
    let init_v4 = dir.join("init.ckpt");
    ShardRunner::write_init(&config, &init_v4).unwrap();

    let v4 = std::fs::read(&init_v4).unwrap();
    let v3 = downgrade_to_v3(&v4);
    let init_v3 = dir.join("init-v3.ckpt");
    std::fs::write(&init_v3, &v3).unwrap();

    // The v4 original carries this config's job; the v3 downgrade (no
    // job block at all) loads as the pinned default.
    assert_eq!(
        SearchCheckpoint::from_bytes(&v4).unwrap().job,
        config.job().clone()
    );
    assert_eq!(
        SearchCheckpoint::from_bytes(&v3).unwrap().job,
        JobSpec::default()
    );

    // Resuming the same shard from either snapshot produces the same
    // bytes, and the evaluation worker count never matters.
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for workers in [0usize, 1, 2, 8] {
        let opts = BatchOptions::default()
            .with_batch_size(4)
            .with_workers(workers);
        for (tag, init) in [("v4", &init_v4), ("v3", &init_v3)] {
            let out = dir.join(format!("out-{tag}-{workers}.ckpt"));
            ShardRunner::new(config.clone(), ShardSpec::new(0, 2).unwrap())
                .run_stored(&opts, init, &CheckpointOptions::new(&out), None)
                .unwrap();
            outputs.push(std::fs::read(&out).unwrap());
        }
    }
    for pair in outputs.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "v3/v4 inits or worker counts changed the resumed bytes"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}
