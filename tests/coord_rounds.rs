//! The coordinator's determinism contract, end to end over real TCP.
//!
//! The claim under test: an R-round × N-shard run driven by `fnas-coord`
//! over the wire — with workers dying, leases expiring and shards being
//! speculatively re-dispatched — produces a final checkpoint
//! **byte-identical** to the same rounds driven sequentially in one
//! process by [`fnas_coord::run_rounds_local`]. Scheduling decides who
//! computes; it can never change what the result is.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use fnas::experiment::ExperimentPreset;
use fnas::search::{BatchOptions, SearchConfig, ShardSpec};
use fnas_coord::framing::{read_frame, write_frame};
use fnas_coord::{
    init_for_round, run_rounds_local, run_worker, Clock, Coordinator, CoordinatorOptions,
    LeasePolicy, Request, Response, WallClock, WorkerOptions,
};
use proptest::prelude::*;

const SHARDS: u32 = 3;
const ROUNDS: u64 = 2;

fn base() -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 10.0).with_seed(77)
}

fn opts() -> BatchOptions {
    BatchOptions::default().with_batch_size(3).with_workers(0)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-coord-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls once with the right fingerprint, takes the assignment, and
/// vanishes without ever heartbeating or submitting — the wire-level
/// shape of a worker killed mid-round. Returns what it was assigned.
fn desert_one_assignment(addr: &str, fingerprint: u64) -> Option<(u64, u32)> {
    let poll = Request::Poll {
        worker: "deserter".to_string(),
        fingerprint,
    };
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &poll.to_bytes()).unwrap();
    let response = Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap();
    match response {
        Response::Assign { round, shard, .. } => Some((round, shard)),
        other => panic!("deserter expected an assignment, got {other:?}"),
    }
}

/// A coordinated localhost run with one worker killed mid-round is
/// byte-identical to the sequential in-process reference, and the lease
/// machinery visibly did its job (the deserted lease expired and the
/// shard was re-run by someone else).
#[test]
fn killed_worker_coordinated_run_matches_sequential_bytes() {
    let dir = tmp("killed");
    let reference = run_rounds_local(&base(), &opts(), SHARDS, ROUNDS, &dir.join("local"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut lease = LeasePolicy::with_ttl_ms(300);
    lease.straggle_after_ms = 150;
    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: ROUNDS,
        lease,
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(base(), 3, coord_opts, clock).unwrap());
    let fingerprint = coord.fingerprint();

    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };

    // The first assignment (round 0, shard 0) is taken and abandoned.
    let deserted = desert_one_assignment(&addr, fingerprint).unwrap();
    assert_eq!(deserted, (0, 0));

    // Two real workers serve the rest of the run between them.
    let workers: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr.clone(), name, dir.join(name));
            w.heartbeat_ms = 50;
            std::thread::spawn(move || run_worker(&base(), &opts(), &w, SHARDS, ROUNDS))
        })
        .collect();

    let merged = serve.join().unwrap().unwrap();
    let mut fresh = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        assert!(report.shards_run > 0, "both workers should contribute");
        fresh += report.fresh_results;
    }

    // Byte identity with the sequential reference, despite the kill.
    assert_eq!(merged.to_bytes(), reference);
    assert_eq!(merged.trials.len(), 12 * ROUNDS as usize);

    // The deserted shard was recovered — speculatively replicated while
    // its lease aged, or returned to the pool when it expired (whichever
    // the timing produced) — and every shard settled exactly once from a
    // live worker (the deserter never submitted).
    let t = coord.telemetry().snapshot();
    assert!(
        t.shards_redispatched >= 1 || t.leases_expired >= 1,
        "deserted shard was never recovered: {t:?}"
    );
    assert_eq!(fresh, u64::from(SHARDS) * ROUNDS);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Straggler speculation duplicates work without changing the answer: a
/// slow-heartbeating worker keeps its lease alive past the straggle
/// threshold, an idle worker earns a byte-identical replica, and
/// first-wins settlement absorbs the loser.
#[test]
fn straggler_replicas_settle_first_wins_and_match_sequential_bytes() {
    let dir = tmp("straggler");
    let reference = run_rounds_local(&base(), &opts(), SHARDS, 1, &dir.join("local"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Aggressive speculation: any shard older than 20ms is a straggler,
    // so the three workers end up racing replicas of each other's shards.
    let mut lease = LeasePolicy::with_ttl_ms(5_000);
    lease.straggle_after_ms = 20;
    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: 1,
        lease,
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(base(), 3, coord_opts, clock).unwrap());

    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };
    let workers: Vec<_> = ["w1", "w2", "w3"]
        .into_iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr.clone(), name, dir.join(name));
            w.heartbeat_ms = 25;
            std::thread::spawn(move || run_worker(&base(), &opts(), &w, SHARDS, 1))
        })
        .collect();

    let merged = serve.join().unwrap().unwrap();
    let mut duplicates = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        duplicates += report.duplicate_results;
    }

    assert_eq!(merged.to_bytes(), reference);
    let t = coord.telemetry().snapshot();
    assert_eq!(
        t.duplicate_results, duplicates,
        "worker/coordinator books agree"
    );
    assert_eq!(t.leases_expired, 0, "nothing expired under a 5s TTL: {t:?}");
    std::fs::remove_dir_all(dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replicas of one shard are byte-identical however they are run:
    /// different scratch paths, different evaluation worker counts. This
    /// is the invariant the coordinator's first-wins byte-compare
    /// settlement *assumes*; here it is checked directly.
    #[test]
    fn duplicate_shard_runs_byte_compare_equal(
        seed in 0u64..500,
        shard in 0u32..2,
        workers in 0usize..3,
    ) {
        let config = SearchConfig::fnas(ExperimentPreset::mnist().with_trials(6), 10.0)
            .with_seed(seed);
        let init = init_for_round(&config, 0, None).unwrap();
        let spec = ShardSpec::new(shard, 2).unwrap();
        let dir = tmp(&format!("dup-{seed}-{shard}-{workers}"));
        let first = fnas_coord::run_round_shard(
            &config, 0, spec,&init,
            &BatchOptions::default().with_batch_size(3).with_workers(0),
            &dir.join("first.ckpt"),
        ).unwrap();
        let second = fnas_coord::run_round_shard(
            &config, 0, spec, &init,
            &BatchOptions::default().with_batch_size(3).with_workers(workers),
            &dir.join("second.ckpt"),
        ).unwrap();
        prop_assert_eq!(first, second);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
