//! The coordinator's determinism contract, end to end over real TCP.
//!
//! The claim under test: an R-round × N-shard run driven by `fnas-coord`
//! over the wire — with workers dying, leases expiring and shards being
//! speculatively re-dispatched — produces a final checkpoint
//! **byte-identical** to the same rounds driven sequentially in one
//! process by [`fnas_coord::run_rounds_local`]. Scheduling decides who
//! computes; it can never change what the result is.

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fnas::experiment::ExperimentPreset;
use fnas::search::{BatchOptions, SearchConfig, ShardSpec};
use fnas_coord::framing::{read_frame, write_frame};
use fnas_coord::{
    init_for_round, journal, merge_settled, run_round_shard, run_rounds_local, run_worker, Clock,
    Coordinator, CoordinatorOptions, Journal, LeasePolicy, Request, Response, WallClock,
    WorkerOptions,
};
use proptest::prelude::*;

const SHARDS: u32 = 3;
const ROUNDS: u64 = 2;

fn base() -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 10.0).with_seed(77)
}

fn opts() -> BatchOptions {
    BatchOptions::default().with_batch_size(3).with_workers(0)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-coord-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls once with the right fingerprint, takes the assignment, and
/// vanishes without ever heartbeating or submitting — the wire-level
/// shape of a worker killed mid-round. Returns what it was assigned.
fn desert_one_assignment(addr: &str, fingerprint: u64) -> Option<(u64, u32)> {
    let poll = Request::Poll {
        worker: "deserter".to_string(),
        job: base().job().job_digest(),
        fingerprint,
    };
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &poll.to_bytes()).unwrap();
    let response = Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap();
    match response {
        Response::Assign { round, shard, .. } => Some((round, shard)),
        other => panic!("deserter expected an assignment, got {other:?}"),
    }
}

/// A coordinated localhost run with one worker killed mid-round is
/// byte-identical to the sequential in-process reference, and the lease
/// machinery visibly did its job (the deserted lease expired and the
/// shard was re-run by someone else).
#[test]
fn killed_worker_coordinated_run_matches_sequential_bytes() {
    let dir = tmp("killed");
    let reference = run_rounds_local(&base(), &opts(), SHARDS, ROUNDS, &dir.join("local"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut lease = LeasePolicy::with_ttl_ms(300);
    lease.straggle_after_ms = 150;
    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: ROUNDS,
        lease,
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(base(), 3, coord_opts, clock).unwrap());
    let fingerprint = coord.fingerprint();

    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };

    // The first assignment (round 0, shard 0) is taken and abandoned.
    let deserted = desert_one_assignment(&addr, fingerprint).unwrap();
    assert_eq!(deserted, (0, 0));

    // Two real workers serve the rest of the run between them.
    let workers: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr.clone(), name, dir.join(name));
            w.heartbeat_ms = 50;
            std::thread::spawn(move || run_worker(&base(), &opts(), &w, SHARDS, ROUNDS))
        })
        .collect();

    let merged = serve.join().unwrap().unwrap();
    let mut fresh = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        assert!(report.shards_run > 0, "both workers should contribute");
        fresh += report.fresh_results;
    }

    // Byte identity with the sequential reference, despite the kill.
    assert_eq!(merged.to_bytes(), reference);
    assert_eq!(merged.trials.len(), 12 * ROUNDS as usize);

    // The deserted shard was recovered — speculatively replicated while
    // its lease aged, or returned to the pool when it expired (whichever
    // the timing produced) — and every shard settled exactly once from a
    // live worker (the deserter never submitted).
    let t = coord.telemetry().snapshot();
    assert!(
        t.shards_redispatched >= 1 || t.leases_expired >= 1,
        "deserted shard was never recovered: {t:?}"
    );
    assert_eq!(fresh, u64::from(SHARDS) * ROUNDS);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Straggler speculation duplicates work without changing the answer: a
/// slow-heartbeating worker keeps its lease alive past the straggle
/// threshold, an idle worker earns a byte-identical replica, and
/// first-wins settlement absorbs the loser.
#[test]
fn straggler_replicas_settle_first_wins_and_match_sequential_bytes() {
    let dir = tmp("straggler");
    let reference = run_rounds_local(&base(), &opts(), SHARDS, 1, &dir.join("local"))
        .unwrap()
        .to_bytes();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Aggressive speculation: any shard older than 20ms is a straggler,
    // so the three workers end up racing replicas of each other's shards.
    let mut lease = LeasePolicy::with_ttl_ms(5_000);
    lease.straggle_after_ms = 20;
    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: 1,
        lease,
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(base(), 3, coord_opts, clock).unwrap());

    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };
    let workers: Vec<_> = ["w1", "w2", "w3"]
        .into_iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr.clone(), name, dir.join(name));
            w.heartbeat_ms = 25;
            std::thread::spawn(move || run_worker(&base(), &opts(), &w, SHARDS, 1))
        })
        .collect();

    let merged = serve.join().unwrap().unwrap();
    let mut duplicates = 0;
    for handle in workers {
        let report = handle.join().unwrap().unwrap();
        duplicates += report.duplicate_results;
    }

    assert_eq!(merged.to_bytes(), reference);
    let t = coord.telemetry().snapshot();
    assert_eq!(
        t.duplicate_results, duplicates,
        "worker/coordinator books agree"
    );
    assert_eq!(t.leases_expired, 0, "nothing expired under a 5s TTL: {t:?}");
    std::fs::remove_dir_all(dir).unwrap();
}

/// One request–response exchange over a fresh connection, the way a
/// real worker (or a pre-crash straggler) talks to the coordinator.
fn rpc(addr: &str, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &request.to_bytes()).unwrap();
    Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap()
}

/// Precomputes every shard result of a `shards × 2` run plus the
/// round-1 init, so tests can play submissions in any incarnation
/// without re-deriving them (determinism makes these *the* bytes any
/// worker would produce).
fn precompute_shards(dir: &Path, shards: u32) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let shard = |round: u64, s: u32, init: &fnas::checkpoint::SearchCheckpoint| {
        run_round_shard(
            &base(),
            round,
            ShardSpec::new(s, shards).unwrap(),
            init,
            &opts(),
            &dir.join(format!("pre-{round}-{s}.ckpt")),
        )
        .unwrap()
    };
    let init0 = init_for_round(&base(), 0, None).unwrap();
    let r0: Vec<Vec<u8>> = (0..shards).map(|s| shard(0, s, &init0)).collect();
    let init1 = init_for_round(&base(), 1, Some(&merge_settled(&r0).unwrap())).unwrap();
    let r1: Vec<Vec<u8>> = (0..shards).map(|s| shard(1, s, &init1)).collect();
    (r0, r1)
}

/// The HA contract end to end: incarnation A journals round 0 and one
/// shard of round 1 over real TCP, "crashes" (abandoned mid-round),
/// and incarnation B on the same journal dir — but a fresh port —
/// resumes exactly where A stopped, fences A's in-flight results by
/// epoch, and finishes **byte-identical** to the sequential reference
/// with `workers` live workers.
fn kill_restart_recovery(worker_names: &[&str], tag: &str) {
    let dir = tmp(tag);
    let wal_dir = dir.join("wal");
    let reference = run_rounds_local(&base(), &opts(), SHARDS, ROUNDS, &dir.join("local"))
        .unwrap()
        .to_bytes();
    let (r0, r1) = precompute_shards(&dir, SHARDS);

    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: ROUNDS,
        lease: LeasePolicy::with_ttl_ms(5_000),
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());

    // Incarnation A: epoch 0, cold start. Settles all of round 0 and
    // shard 0 of round 1 over the wire, then is abandoned mid-round —
    // its serve thread is never joined, the wire-level shape of a
    // SIGKILL. Only the journal directory survives it.
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let coord_a = Arc::new(
        Coordinator::with_journal(base(), 3, coord_opts.clone(), Arc::clone(&clock), &wal_dir)
            .unwrap(),
    );
    assert_eq!((coord_a.epoch(), coord_a.rounds_recovered()), (0, 0));
    let fingerprint = coord_a.fingerprint();
    let job = coord_a.job();
    {
        let coord = Arc::clone(&coord_a);
        std::thread::spawn(move || coord.serve(listener_a));
    }
    for (s, bytes) in r0.iter().enumerate() {
        let response = rpc(
            &addr_a,
            &Request::Submit {
                worker: "pilot".to_string(),
                round: 0,
                shard: s as u32,
                epoch: 0,
                job,
                fingerprint,
                bytes: bytes.clone(),
            },
        );
        assert_eq!(
            response,
            Response::Accepted { fresh: true },
            "round 0 shard {s}"
        );
    }
    let response = rpc(
        &addr_a,
        &Request::Submit {
            worker: "pilot".to_string(),
            round: 1,
            shard: 0,
            epoch: 0,
            job,
            fingerprint,
            bytes: r1[0].clone(),
        },
    );
    assert_eq!(response, Response::Accepted { fresh: true });

    // Incarnation B: same journal dir, fresh port. It must come up in
    // round 1 with shard 0 already settled, at the next epoch.
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_b = listener_b.local_addr().unwrap().to_string();
    let coord_b = Arc::new(
        Coordinator::with_journal(base(), 3, coord_opts, Arc::clone(&clock), &wal_dir).unwrap(),
    );
    assert_eq!(coord_b.epoch(), 1, "restart takes the next epoch");
    assert_eq!(coord_b.rounds_recovered(), 1, "round 0 replays from spills");
    let serve_b = {
        let coord = Arc::clone(&coord_b);
        std::thread::spawn(move || coord.serve(listener_b))
    };

    // A result dispatched by incarnation A arrives late, carrying A's
    // epoch. Even though its bytes are exactly right, it is fenced —
    // rejected deterministically, counted, and the shard stays open for
    // a live worker to re-earn.
    let stale = rpc(
        &addr_b,
        &Request::Submit {
            worker: "ghost-of-epoch-0".to_string(),
            round: 1,
            shard: 1,
            epoch: 0,
            job,
            fingerprint,
            bytes: r1[1].clone(),
        },
    );
    assert_eq!(stale, Response::Stale { epoch: 1 });

    let workers: Vec<_> = worker_names
        .iter()
        .map(|name| {
            let mut w = WorkerOptions::new(addr_b.clone(), *name, dir.join(name));
            w.heartbeat_ms = 50;
            std::thread::spawn(move || run_worker(&base(), &opts(), &w, SHARDS, ROUNDS))
        })
        .collect();
    let merged = serve_b.join().unwrap().unwrap();
    let mut fresh = 0;
    for handle in workers {
        fresh += handle.join().unwrap().unwrap().fresh_results;
    }

    assert_eq!(
        merged.to_bytes(),
        reference,
        "recovered run must be byte-identical to the uninterrupted one"
    );
    // Exactly round 1's shards 1 and 2 were re-earned live: the fenced
    // submission never settled anything, and the recovered settlements
    // were not recomputed.
    assert_eq!(fresh, u64::from(SHARDS) - 1);
    let t = coord_b.telemetry().snapshot();
    assert_eq!(t.stale_submissions_rejected, 1);
    assert_eq!(t.rounds_recovered, 1);
    let report = Journal::verify(&wal_dir).unwrap();
    assert!(report.is_ok(), "journal ends clean: {report:?}");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn coordinator_killed_mid_round_recovers_byte_identical_one_worker() {
    kill_restart_recovery(&["w1"], "ha-1w");
}

#[test]
fn coordinator_killed_mid_round_recovers_byte_identical_three_workers() {
    kill_restart_recovery(&["w1", "w2", "w3"], "ha-3w");
}

/// Crash-anywhere coverage: a full journaled run is recorded, then the
/// WAL is cut at **every byte offset** and recovered. Every prefix must
/// come up cleanly (a torn tail is data loss, never an error), answer
/// each settlement the prefix already holds as a duplicate (never a
/// fresh double settle), and — at each record boundary — drive to a
/// final checkpoint byte-identical to the reference.
#[test]
fn every_journal_prefix_recovers_cleanly_without_double_settles() {
    const P_SHARDS: u32 = 2;
    let dir = tmp("prefix");
    let wal_dir = dir.join("wal");
    let reference = run_rounds_local(&base(), &opts(), P_SHARDS, ROUNDS, &dir.join("local"))
        .unwrap()
        .to_bytes();
    let (r0, r1) = precompute_shards(&dir, P_SHARDS);
    let bytes_for =
        |round: u64, shard: u32| (if round == 0 { &r0 } else { &r1 })[shard as usize].clone();

    let coord_opts = CoordinatorOptions {
        shards: P_SHARDS,
        rounds: ROUNDS,
        lease: LeasePolicy::with_ttl_ms(5_000),
        backoff_ms: 20,
        linger_ms: 0,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());

    // Record one complete journaled run (spills for every shard, WAL
    // through `Finished`), driven through the protocol handler.
    let coord =
        Coordinator::with_journal(base(), 3, coord_opts.clone(), Arc::clone(&clock), &wal_dir)
            .unwrap();
    let fingerprint = coord.fingerprint();
    let submit = |coord: &Coordinator, round: u64, shard: u32| {
        coord.handle(&Request::Submit {
            worker: "driver".to_string(),
            round,
            shard,
            epoch: coord.epoch(),
            job: coord.job(),
            fingerprint,
            bytes: bytes_for(round, shard),
        })
    };
    for round in 0..ROUNDS {
        for shard in 0..P_SHARDS {
            assert_eq!(
                submit(&coord, round, shard),
                Response::Accepted { fresh: true }
            );
        }
    }
    assert_eq!(coord.finished_checkpoint().unwrap().to_bytes(), reference);
    drop(coord);

    let full_wal = std::fs::read(journal::wal_path(&wal_dir)).unwrap();
    for cut in 0..=full_wal.len() {
        // Simulate a crash that left only `cut` bytes of WAL (spill
        // files all survive — they are published atomically).
        std::fs::write(journal::wal_path(&wal_dir), &full_wal[..cut]).unwrap();
        let (records, clean) = journal::decode_journal(&full_wal[..cut]);
        let plan = journal::replay(&records);
        let coord =
            Coordinator::with_journal(base(), 3, coord_opts.clone(), Arc::clone(&clock), &wal_dir)
                .unwrap_or_else(|e| panic!("prefix of {cut} bytes must recover, got: {e}"));
        assert_eq!(coord.epoch(), plan.next_epoch, "prefix of {cut} bytes");

        // Nothing the prefix already settled may settle again.
        for &(round, shard, _, _) in &plan.settled {
            assert_eq!(
                submit(&coord, round, shard),
                Response::Accepted { fresh: false },
                "prefix of {cut} bytes: round {round} shard {shard} double-settled"
            );
        }

        // At record boundaries (the only prefixes a real crash of our
        // own fsync'd appends can leave beyond torn tails), finish the
        // run and pin byte identity.
        if clean == cut {
            for round in 0..ROUNDS {
                for shard in 0..P_SHARDS {
                    let response = submit(&coord, round, shard);
                    assert!(
                        matches!(response, Response::Accepted { .. }),
                        "prefix of {cut} bytes: round {round} shard {shard}: {response:?}"
                    );
                }
            }
            assert_eq!(
                coord.finished_checkpoint().unwrap().to_bytes(),
                reference,
                "prefix of {cut} bytes: drive-to-completion diverged"
            );
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// A worker pointed at the wrong *job* — same execution flags, different
/// latency spec `rL` — is turned away deterministically on its first
/// poll over real TCP: a clean `WrongJob`-driven error naming both
/// digests, not a hang, not a fingerprint complaint, and never a
/// settlement. The right-job workers then finish the run untouched.
#[test]
fn mismatched_job_worker_is_rejected_deterministically() {
    let dir = tmp("wrongjob");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord_opts = CoordinatorOptions {
        shards: SHARDS,
        rounds: 1,
        lease: LeasePolicy::with_ttl_ms(5_000),
        backoff_ms: 20,
        linger_ms: 1_500,
        max_buffered_rounds: 2,
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let coord = Arc::new(Coordinator::new(base(), 3, coord_opts, clock).unwrap());
    let serve = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || coord.serve(listener))
    };

    // Identical flags except `rL`: 9 ms instead of 10 ms. That moves the
    // fingerprint too, but the job check answers first — the worker
    // learns it brought the wrong *search*, not merely the wrong flags.
    let wrong = SearchConfig::fnas(ExperimentPreset::mnist().with_trials(12), 9.0).with_seed(77);
    assert_ne!(wrong.job().job_digest(), base().job().job_digest());
    let mut w = WorkerOptions::new(addr.clone(), "impostor", dir.join("impostor"));
    w.heartbeat_ms = 50;
    let err = run_worker(&wrong, &opts(), &w, SHARDS, 1).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("coordinator serves job"), "{msg}");
    assert!(
        msg.contains(&format!("{:#018x}", base().job().job_digest())),
        "{msg}"
    );
    assert!(
        msg.contains(&format!("{:#018x}", wrong.job().job_digest())),
        "{msg}"
    );

    // The impostor held no lease and settled nothing: a right-job worker
    // earns every shard fresh and the round completes normally.
    let mut w = WorkerOptions::new(addr, "honest", dir.join("honest"));
    w.heartbeat_ms = 50;
    let report = run_worker(&base(), &opts(), &w, SHARDS, 1).unwrap();
    assert_eq!(report.fresh_results, u64::from(SHARDS));
    let merged = serve.join().unwrap().unwrap();
    assert_eq!(merged.trials.len(), 12);
    std::fs::remove_dir_all(dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replicas of one shard are byte-identical however they are run:
    /// different scratch paths, different evaluation worker counts. This
    /// is the invariant the coordinator's first-wins byte-compare
    /// settlement *assumes*; here it is checked directly.
    #[test]
    fn duplicate_shard_runs_byte_compare_equal(
        seed in 0u64..500,
        shard in 0u32..2,
        workers in 0usize..3,
    ) {
        let config = SearchConfig::fnas(ExperimentPreset::mnist().with_trials(6), 10.0)
            .with_seed(seed);
        let init = init_for_round(&config, 0, None).unwrap();
        let spec = ShardSpec::new(shard, 2).unwrap();
        let dir = tmp(&format!("dup-{seed}-{shard}-{workers}"));
        let first = fnas_coord::run_round_shard(
            &config, 0, spec,&init,
            &BatchOptions::default().with_batch_size(3).with_workers(0),
            &dir.join("first.ckpt"),
        ).unwrap();
        let second = fnas_coord::run_round_shard(
            &config, 0, spec, &init,
            &BatchOptions::default().with_batch_size(3).with_workers(workers),
            &dir.join("second.ckpt"),
        ).unwrap();
        prop_assert_eq!(first, second);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
