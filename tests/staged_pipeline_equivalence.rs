//! Property-based equivalence of the staged hardware-oracle pipeline.
//!
//! The staged [`fnas::latency::LatencyEvaluator`] memoises per-architecture
//! artifacts (design → task graph → schedule) at stage granularity, with
//! single-flight dedup, and serves three consumers (analytic latency,
//! cycle-accurate latency, deployment reports) from the same record. None
//! of that machinery may change a single bit of the answers: this suite
//! compares the staged path against a one-shot reference built directly
//! from the `fnas-fpga` primitives — the shape of the pre-refactor code —
//! for random architectures, at 0, 1, 2 and 8 workers.

use fnas::deploy::DeploymentReport;
use fnas::latency::LatencyEvaluator;
use fnas::mapping::arch_to_network;
use fnas_controller::arch::ChildArch;
use fnas_controller::space::SearchSpace;
use fnas_exec::Executor;
use fnas_fpga::analyzer::analyze;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::passes::partition::PartitionedGraph;
use fnas_fpga::sched::FnasScheduler;
use fnas_fpga::sim::parallel::simulate_design_partitioned;
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;
use proptest::prelude::*;

const INPUT: (usize, usize, usize) = (1, 28, 28);
const WORKER_COUNTS: [usize; 4] = [0, 1, 2, 8];
const PARTITION_COUNTS: [usize; 3] = [1, 2, 8];

/// Strategy: a random MNIST-space child (4 layers, 8 decision indices).
fn arb_arch() -> impl Strategy<Value = ChildArch> {
    prop::collection::vec(0usize..3, 8).prop_map(|idx| {
        ChildArch::from_indices(&SearchSpace::mnist(), &idx).expect("indices in menu range")
    })
}

/// The one-shot reference: build everything from the fpga primitives,
/// exactly once, with no caching layer in between. Returns
/// `(analytic_latency_bits, simulated_latency_bits)` or the error string.
fn one_shot_reference(arch: &ChildArch, cluster: &FpgaCluster) -> Result<(u64, u64), String> {
    let stringify = |e: &dyn std::fmt::Display| e.to_string();
    let network = arch_to_network(arch, INPUT).map_err(|e| stringify(&e))?;
    let design =
        PipelineDesign::generate_on_cluster(&network, cluster).map_err(|e| stringify(&e))?;
    let analytic = analyze(&design).map_err(|e| stringify(&e))?.latency;
    let graph = TileTaskGraph::from_design(&design).map_err(|e| stringify(&e))?;
    let schedule = FnasScheduler::new().schedule(&graph);
    let sim = simulate_design(&design, &graph, &schedule).map_err(|e| stringify(&e))?;
    Ok((analytic.get().to_bits(), sim.latency.get().to_bits()))
}

/// Serialises the observable surface of a deployment report so two reports
/// can be compared bit-for-bit (latencies via `to_bits`, tables as text).
fn deploy_fingerprint(report: &DeploymentReport) -> (u64, u64, String, String) {
    (
        report.analytic_latency().get().to_bits(),
        report.simulation().latency.get().to_bits(),
        report.summary(),
        report.layer_table().to_markdown(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every random batch of architectures and every worker count, the
    /// staged/memoised evaluator returns bit-identical analytic latency,
    /// simulated latency and deployment records to the one-shot reference —
    /// and builds each unique design exactly once.
    #[test]
    fn staged_pipeline_matches_the_one_shot_path(
        archs in prop::collection::vec(arb_arch(), 1..5),
    ) {
        let cluster = FpgaCluster::single(FpgaDevice::pynq());
        let reference: Vec<Result<(u64, u64), String>> = archs
            .iter()
            .map(|a| one_shot_reference(a, &cluster))
            .collect();
        let mut unique: Vec<&ChildArch> = Vec::new();
        for a in &archs {
            if !unique.contains(&a) {
                unique.push(a);
            }
        }

        for workers in WORKER_COUNTS {
            // Fresh evaluator per arm: every worker count must reproduce
            // the reference from a cold cache.
            let eval = LatencyEvaluator::on_cluster(cluster.clone(), INPUT);
            let executor = Executor::with_workers(workers);

            // Two rounds so the second is answered entirely from cache.
            for round in 0..2 {
                let staged = executor.map(&archs, |_, arch| {
                    let analytic = eval.latency(arch).map_err(|e| e.to_string())?;
                    let simulated = eval.simulated_latency(arch).map_err(|e| e.to_string())?;
                    Ok::<_, String>((analytic.get().to_bits(), simulated.get().to_bits()))
                });
                for (child, (got, want)) in staged.iter().zip(&reference).enumerate() {
                    match (got, want) {
                        (Ok(g), Ok(w)) => prop_assert_eq!(
                            g, w,
                            "latency mismatch: child {} round {} workers {}",
                            child, round, workers
                        ),
                        (Err(_), Err(_)) => {}
                        (g, w) => prop_assert!(
                            false,
                            "error-shape mismatch: child {child} round {round} \
                             workers {workers}: staged {g:?} vs one-shot {w:?}"
                        ),
                    }
                }
            }

            // Deployment records: staged (shared artifacts) vs one-shot
            // regeneration, compared over their full rendered surface.
            for arch in &unique {
                let staged = eval.deploy(arch);
                let direct = DeploymentReport::generate(arch, &cluster, INPUT);
                match (staged, direct) {
                    (Ok(s), Ok(d)) => {
                        prop_assert_eq!(deploy_fingerprint(&s), deploy_fingerprint(&d))
                    }
                    (Err(_), Err(_)) => {}
                    (s, d) => prop_assert!(
                        false,
                        "deploy error-shape mismatch at {} workers: staged {:?} vs direct {:?}",
                        workers,
                        s.is_ok(),
                        d.is_ok()
                    ),
                }
            }

            // Stage-level memoisation held across all consumers and rounds.
            let buildable = unique
                .iter()
                .filter(|a| one_shot_reference(a, &cluster).is_ok())
                .count() as u64;
            prop_assert_eq!(
                eval.design_builds(),
                buildable,
                "each unique buildable arch must be designed exactly once \
                 (workers {})",
                workers
            );
            prop_assert_eq!(eval.analyzer_calls(), buildable);
        }
    }

    /// The partitioned parallel simulator settles to **byte-identical**
    /// reports against the single-threaded event-heap simulator for random
    /// architectures, at 1, 2 and 8 partitions and every worker count
    /// (0 workers = inline sequential execution of the same region code).
    #[test]
    fn partitioned_sim_matches_the_single_threaded_simulator(arch in arb_arch()) {
        let cluster = FpgaCluster::single(FpgaDevice::pynq());
        let buildable = arch_to_network(&arch, INPUT)
            .map_err(|e| e.to_string())
            .and_then(|n| {
                PipelineDesign::generate_on_cluster(&n, &cluster).map_err(|e| e.to_string())
            });
        // Unbuildable children exercise nothing here.
        if let Ok(design) = buildable {
            let graph = TileTaskGraph::from_design(&design).expect("task graph");
            let schedule = FnasScheduler::new().schedule(&graph);
            let reference = simulate_design(&design, &graph, &schedule).expect("reference sim");

            for parts in PARTITION_COUNTS {
                let partitions = PartitionedGraph::build(&graph, parts);
                for workers in WORKER_COUNTS {
                    let executor = Executor::with_workers(workers);
                    let (report, stats) = simulate_design_partitioned(
                        &design, &graph, &schedule, &partitions, &executor,
                    )
                    .expect("partitioned sim");
                    prop_assert_eq!(
                        &report, &reference,
                        "partitioned sim diverged at {} partitions, {} workers",
                        parts, workers
                    );
                    prop_assert_eq!(stats.partitions_built, partitions.num_regions() as u64);
                }
            }
        }
    }

    /// The `partitioned-sim` latency backend is bit-identical to the
    /// `simulated` backend on a fresh evaluator at every worker count.
    #[test]
    fn partitioned_backend_matches_the_simulated_backend(
        archs in prop::collection::vec(arb_arch(), 1..4),
    ) {
        let cluster = FpgaCluster::single(FpgaDevice::pynq());
        for workers in WORKER_COUNTS {
            let simulated = LatencyEvaluator::on_cluster(cluster.clone(), INPUT);
            let partitioned = LatencyEvaluator::on_cluster(cluster.clone(), INPUT);
            let executor = Executor::with_workers(workers);
            let results = executor.map(&archs, |_, arch| {
                let s = simulated.simulated_latency(arch).map_err(|e| e.to_string());
                let p = partitioned
                    .partitioned_latency(arch)
                    .map_err(|e| e.to_string());
                (s.map(|m| m.get().to_bits()), p.map(|m| m.get().to_bits()))
            });
            for (child, (s, p)) in results.into_iter().enumerate() {
                match (s, p) {
                    (Ok(s), Ok(p)) => prop_assert_eq!(
                        s, p,
                        "backend mismatch: child {} workers {}",
                        child, workers
                    ),
                    (Err(_), Err(_)) => {}
                    (s, p) => prop_assert!(
                        false,
                        "error-shape mismatch: child {child} workers {workers}: \
                         simulated {s:?} vs partitioned {p:?}"
                    ),
                }
            }
        }
    }
}
