//! Reproduces the paper's worked examples through the public API.
//!
//! * Fig. 3(a)–(e): tiling counts and the tile-based task graph;
//! * Fig. 4: the FNAS schedule starts layer 2 after layer 1 has produced
//!   exactly the tiles one IFM tile needs, with no stalls on either PE for
//!   the balanced example;
//! * Table 2: the presets encode the published parameters (asserted in the
//!   crates' unit tests; revalidated here end-to-end through a search).

use fnas_fpga::analyzer::analyze;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::FpgaDevice;
use fnas_fpga::layer::{ConvShape, Network};
use fnas_fpga::sched::{FnasScheduler, ReuseStrategy};
use fnas_fpga::sim::{simulate_design, simulate_traced};
use fnas_fpga::taskgraph::TileTaskGraph;

/// A two-conv pipeline engineered so that the generated design reproduces
/// the ratios of Fig. 3(d): the boundary between the layers has more OFM
/// tiles than IFM tiles (`Tm < Tn`), creating the non-1:1 intra-layer
/// dependencies the paper illustrates.
fn paper_like_pipeline() -> (PipelineDesign, TileTaskGraph) {
    let net = Network::new(vec![
        ConvShape::square(6, 6, 8, 3).expect("valid shape"),
        ConvShape::square(6, 6, 8, 3).expect("valid shape"),
    ])
    .expect("channel-compatible");
    let design = PipelineDesign::generate(&net, &FpgaDevice::pynq()).expect("fits the device");
    let graph = TileTaskGraph::from_design(&design).expect("consistent grid");
    (design, graph)
}

#[test]
fn task_counts_follow_fig3e_structure() {
    let (design, graph) = paper_like_pipeline();
    for (i, layer) in design.layers().iter().enumerate() {
        // |tasks| = |CH_ifm| × |CH_ofm| × |RC| — the node count rule of
        // Fig. 3(e).
        assert_eq!(
            graph.layer(i).task_count(),
            layer.ch_ifm_tiles() * layer.ch_ofm_tiles() * layer.rc_tiles()
        );
    }
}

#[test]
fn intra_layer_dependencies_cover_channel_ranges() {
    let (design, graph) = paper_like_pipeline();
    let consumer = &design.layers()[1];
    let producer = &design.layers()[0];
    for j in 0..consumer.ch_ifm_tiles() {
        let range = graph.ifm_prereqs(1, j).expect("layer 1 has prereqs");
        // The covered producer channels must include the consumer tile's
        // channel interval.
        let lo = j * consumer.tiling().tn;
        let hi = ((j + 1) * consumer.tiling().tn).min(consumer.shape().in_channels());
        assert!(range.start() * producer.tiling().tm <= lo);
        assert!((range.end() + 1) * producer.tiling().tm >= hi);
    }
}

#[test]
fn fig4_schedule_starts_pe2_at_the_analytic_delta() {
    let (design, graph) = paper_like_pipeline();
    let schedule = FnasScheduler::new().schedule(&graph);
    assert_eq!(
        schedule.reuse_strategies(),
        &[ReuseStrategy::OfmReuse, ReuseStrategy::IfmReuse],
        "Fig. 4: layer 1 achieves OFM reuse, layer 2 IFM reuse"
    );
    let sim = simulate_design(&design, &graph, &schedule).expect("simulates");
    let report = analyze(&design).expect("analyzable");
    // PE2's simulated start time equals the analyzer's Δt for that boundary
    // (Eq. 3, since layer 1 uses OFM reuse) — the "start-time" arrow in
    // Fig. 4(b).
    assert_eq!(
        sim.pes[1].start.get(),
        report.start_deltas[0].get(),
        "simulated start {} vs Eq. (3) {}",
        sim.pes[1].start,
        report.start_deltas[0]
    );
}

#[test]
fn fig4_balanced_example_runs_without_stalls() {
    let (design, graph) = paper_like_pipeline();
    let schedule = FnasScheduler::new().schedule(&graph);
    let sim = simulate_design(&design, &graph, &schedule).expect("simulates");
    // "the start-time is only 4 time units, and there is no stall in the
    // executions for both layers" — the balanced two-layer pipeline keeps
    // both PEs stall-free here too.
    assert_eq!(sim.total_stall().get(), 0, "stalls: {:?}", sim.pes);
}

#[test]
fn fig4b_reuse_patterns_appear_in_the_executed_trace() {
    // Fig. 4(b): "tasks in layer1 (PE1) can achieve OFM reuse, while IFM
    // reuse can be achieved in layer2 (PE2)". Verify on the actually
    // executed (in-order) trace, not just the planned schedule.
    let (design, graph) = paper_like_pipeline();
    let schedule = FnasScheduler::new().without_reordering().schedule(&graph);
    let transfers: Vec<fnas_fpga::Cycles> = (0..graph.num_layers() - 1)
        .map(|i| design.boundary_transfer_cycles(i))
        .collect();
    let (_, trace) = simulate_traced(&graph, &schedule, &transfers).expect("simulates");

    // PE1 (layer 0, OFM reuse): runs of |CH_ifm| consecutive tasks share
    // the same output tile (k, m).
    let l0 = graph.layer(0);
    let pe0 = trace.pe_events(0);
    for chunk in pe0.chunks(l0.ch_ifm) {
        assert!(chunk
            .iter()
            .all(|e| e.task.k == chunk[0].task.k && e.task.m == chunk[0].task.m));
    }
    // PE2 (layer 1, IFM reuse): runs of |CH_ofm| consecutive tasks share
    // the same input tile (j, m).
    let l1 = graph.layer(1);
    let pe1 = trace.pe_events(1);
    for chunk in pe1.chunks(l1.ch_ofm) {
        assert!(chunk
            .iter()
            .all(|e| e.task.j == chunk[0].task.j && e.task.m == chunk[0].task.m));
    }
}

#[test]
fn analyzer_matches_simulator_exactly_on_the_worked_example() {
    let (design, graph) = paper_like_pipeline();
    let schedule = FnasScheduler::new().schedule(&graph);
    let sim = simulate_design(&design, &graph, &schedule).expect("simulates");
    let report = analyze(&design).expect("analyzable");
    assert_eq!(report.latency_cycles.get(), sim.makespan.get());
}
