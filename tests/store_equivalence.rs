//! The on-disk hardware store (DESIGN.md §14) must be **cache-transparent**
//! and **actually reused**.
//!
//! Three contracts pinned here:
//!
//! * **Transparency** — a search with the store attached (cold directory,
//!   then the same directory warm) is bit-identical to a search without
//!   one, at every worker count (0, 1, 2, 8). The store may only ever
//!   change wall time.
//! * **Cross-process reuse** — a second searcher with a *fresh*
//!   [`DiskStore`] handle on an already-populated directory (the moral
//!   equivalent of a second process on a shared filesystem) serves ≥ 90%
//!   of its lookups from the store and does strictly less design-build
//!   and simulator work than the cold pass.
//! * **Key stability** — the canonical key codec is injective, payloads
//!   round-trip through a real store directory byte-for-byte, and one
//!   canonical key digest is pinned to a literal so any silent change to
//!   the key schema (which would orphan every deployed store) fails CI.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fnas::experiment::ExperimentPreset;
use fnas::persist;
use fnas::search::{BatchOptions, SearchConfig, SearchOutcome, Searcher};
use fnas_controller::arch::{ChildArch, LayerChoice};
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_store::{Backend, CacheKey, DiskStore, Store};
use proptest::prelude::*;

fn config(trials: usize, seed: u64) -> SearchConfig {
    SearchConfig::fnas(ExperimentPreset::mnist().with_trials(trials), 5.0).with_seed(seed)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-store-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The observable outcome: deployed arch, full per-trial trace with exact
/// float bits, and exact cost totals.
type Fingerprint = (
    Option<String>,
    Vec<(String, u32, Option<u64>, bool)>,
    u64,
    u64,
);

fn fingerprint(out: &SearchOutcome) -> Fingerprint {
    (
        out.best().map(|b| b.arch.describe()),
        out.trials()
            .iter()
            .map(|t| {
                (
                    t.arch.describe(),
                    t.reward.to_bits(),
                    t.latency.map(|l| l.get().to_bits()),
                    t.trained,
                )
            })
            .collect(),
        out.cost().training_seconds.to_bits(),
        out.cost().analyzer_seconds.to_bits(),
    )
}

fn run(config: &SearchConfig, workers: usize, store: Option<Arc<dyn Store>>) -> Fingerprint {
    let mut searcher = Searcher::surrogate(config).expect("constructible");
    if let Some(store) = store {
        searcher.attach_store(store);
    }
    let opts = BatchOptions::sequential()
        .with_workers(workers)
        .with_batch_size(4);
    fingerprint(&searcher.run_batched(config, &opts).expect("runs"))
}

#[test]
fn store_is_bit_identical_to_no_store_at_every_worker_count() {
    let dir = temp_dir("transparent");
    let config = config(16, 47);
    for workers in [0usize, 1, 2, 8] {
        let store_dir = dir.join(format!("store-{workers}"));
        let baseline = run(&config, workers, None);
        let cold: Arc<dyn Store> = Arc::new(DiskStore::open(&store_dir).expect("store opens"));
        assert_eq!(
            baseline,
            run(&config, workers, Some(cold)),
            "cold store changed results at {workers} workers"
        );
        let warm: Arc<dyn Store> = Arc::new(DiskStore::open(&store_dir).expect("store reopens"));
        assert_eq!(
            baseline,
            run(&config, workers, Some(warm)),
            "warm store changed results at {workers} workers"
        );
    }
    std::fs::remove_dir_all(dir).expect("cleanup");
}

#[test]
fn a_second_process_on_a_warm_store_mostly_hits_and_computes_less() {
    let dir = temp_dir("reuse");
    let config = config(16, 48);
    let opts = BatchOptions::sequential()
        .with_workers(2)
        .with_batch_size(4);

    // Cold pass: its own store handle, as a first process would have.
    let cold_store: Arc<dyn Store> = Arc::new(DiskStore::open(&dir).expect("store opens"));
    let mut cold = Searcher::surrogate(&config).expect("constructible");
    cold.attach_store(Arc::clone(&cold_store));
    let cold_out = cold.run_batched(&config, &opts).expect("runs");
    let best = cold_out.best().expect("a deployable arch").arch.clone();
    // Exercise the simulated backend too, so the warm pass can prove it
    // is served from the store.
    let _ = cold.oracle().latency_eval().simulated_latency(&best);
    let cold_builds = cold.oracle().latency_eval().design_builds();
    let cold_sims = cold.oracle().latency_eval().sim_calls();
    assert!(cold_builds > 0 && cold_sims > 0, "cold pass did no work");

    // Warm pass: fresh searcher AND fresh handle on the same directory.
    let warm_store: Arc<dyn Store> = Arc::new(DiskStore::open(&dir).expect("store reopens"));
    let mut warm = Searcher::surrogate(&config).expect("constructible");
    warm.attach_store(Arc::clone(&warm_store));
    let warm_out = warm.run_batched(&config, &opts).expect("runs");
    let _ = warm.oracle().latency_eval().simulated_latency(&best);

    assert_eq!(
        fingerprint(&cold_out),
        fingerprint(&warm_out),
        "the store changed results between processes"
    );
    let counters = warm_store.counters();
    let lookups = counters.hits + counters.misses;
    assert!(lookups > 0, "warm pass never consulted the store");
    assert!(
        counters.hits * 10 >= lookups * 9,
        "warm store hit rate below 90%: {} hits / {lookups} lookups",
        counters.hits
    );
    let warm_builds = warm.oracle().latency_eval().design_builds();
    let warm_sims = warm.oracle().latency_eval().sim_calls();
    assert!(
        warm_builds < cold_builds,
        "warm pass built as many designs ({warm_builds}) as cold ({cold_builds})"
    );
    assert!(
        warm_sims < cold_sims,
        "warm pass simulated as much ({warm_sims}) as cold ({cold_sims})"
    );
    // The engine's telemetry must agree that the store was the source.
    assert!(warm_out.telemetry().store_hits > 0, "telemetry saw no hits");
    std::fs::remove_dir_all(dir).expect("cleanup");
}

/// Any silent change to the canonical key schema (encodings in
/// `fnas::persist`, digest, layout in `fnas_store::CacheKey`) orphans
/// every deployed store directory, so one digest is pinned to a literal:
/// if this test fails, bump [`fnas_store::SCHEMA_VERSION`] — do not just
/// update the string.
#[test]
fn canonical_key_digest_is_pinned() {
    let arch = ChildArch::new(vec![
        LayerChoice {
            filter_size: 5,
            num_filters: 9,
        },
        LayerChoice {
            filter_size: 3,
            num_filters: 18,
        },
    ])
    .expect("valid arch");
    let cluster = FpgaCluster::single(FpgaDevice::pynq());
    let key = persist::cache_key(&arch, (1, 28, 28), &cluster, Backend::Analytic);
    // Schema v2: the canonical pass-pipeline fingerprint joined the key, so
    // this digest was re-pinned alongside the SCHEMA_VERSION bump (v1 keys
    // are invisible to v2 stores; no silent aliasing).
    assert_eq!(key.hex(), "2f3820247f1b8678e562112ef04d5d77");
    assert_eq!(
        key.relative_path(),
        PathBuf::from("objects")
            .join(&key.hex()[..2])
            .join(format!("{}.rec", key.hex()))
    );
}

fn arb_backend() -> impl Strategy<Value = Backend> {
    prop_oneof![Just(Backend::Analytic), Just(Backend::Simulated)]
}

fn arb_key() -> impl Strategy<Value = CacheKey> {
    (
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        arb_backend(),
    )
        .prop_map(|(a_lo, a_hi, d_lo, d_hi, pipeline, backend)| {
            let arch = (u128::from(a_hi) << 64) | u128::from(a_lo);
            let device = (u128::from(d_hi) << 64) | u128::from(d_lo);
            CacheKey::new(arch, device, pipeline, backend)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The key codec round-trips, and distinct keys have distinct
    /// encodings (the codec is injective — a collision would silently
    /// alias two different evaluations on disk).
    #[test]
    fn cache_key_codec_is_injective(k1 in arb_key(), k2 in arb_key()) {
        prop_assert_eq!(CacheKey::decode(&k1.encode()), Some(k1));
        prop_assert_eq!(CacheKey::decode(&k2.encode()), Some(k2));
        prop_assert_eq!(k1 == k2, k1.encode() == k2.encode());
    }

    /// Arbitrary payloads round-trip byte-for-byte through a real store
    /// directory.
    #[test]
    fn disk_store_round_trips_arbitrary_payloads(
        key in arb_key(),
        payload in prop::collection::vec(0u8..=255, 0..300),
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fnas-store-eq-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let store = DiskStore::open(&dir).expect("store opens");
        prop_assert_eq!(store.get(&key), None);
        store.put(&key, &payload);
        prop_assert_eq!(store.get(&key), Some(payload.clone()));
        // A reopened handle (second process) reads the same bytes.
        let reopened = DiskStore::open(&dir).expect("store reopens");
        prop_assert_eq!(reopened.get(&key), Some(payload));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
