//! Fault tolerance of the search runtime, end to end through the public
//! API.
//!
//! Two contracts are pinned here:
//!
//! 1. **Chaos survival** — with the deterministic fault injector crashing
//!    5% of evaluations, timing out 20% and diverging 5% to `NaN`, a
//!    search behind the resilient retry/quarantine decorator still
//!    completes every episode with finite rewards, reports what it
//!    absorbed in the fault telemetry, and stays bit-identical across
//!    worker counts (the injector draws from the per-child RNG stream,
//!    never from worker identity).
//!
//! 2. **Checkpoint/resume fidelity** — a run killed at episode `k` and
//!    resumed from its checkpoint produces the same outcome, bit for bit,
//!    as the uninterrupted run, at every worker count.

use std::path::PathBuf;

use fnas::evaluator::{AccuracyEvaluator, SurrogateCalibration, SurrogateEvaluator};
use fnas::experiment::ExperimentPreset;
use fnas::resilience::{FaultInjector, FaultPlan, ResilientEvaluator, RetryPolicy};
use fnas::search::{BatchOptions, CheckpointOptions, SearchConfig, SearchOutcome, Searcher};
use fnas::Result as FnasResult;
use fnas_controller::arch::ChildArch;
use fnas_exec::Deadline;
use rand::RngCore;

/// The observable outcome of a run: per-trial (arch, reward/latency/
/// accuracy bits, trained flag) plus the exact cost totals. Telemetry wall
/// times and cache counters are process-local by design and excluded.
fn fingerprint(out: &SearchOutcome) -> Vec<String> {
    let mut fp: Vec<String> = out
        .trials()
        .iter()
        .map(|t| {
            format!(
                "{} r{:08x} l{:?} a{:?} t{}",
                t.arch.describe(),
                t.reward.to_bits(),
                t.latency.map(|l| l.get().to_bits()),
                t.accuracy.map(|a| a.to_bits()),
                t.trained,
            )
        })
        .collect();
    fp.push(format!(
        "cost {:016x} {:016x}",
        out.cost().training_seconds.to_bits(),
        out.cost().analyzer_seconds.to_bits()
    ));
    fp
}

fn chaos_searcher(config: &SearchConfig) -> Searcher {
    let plan = FaultPlan {
        panic_rate: 0.05,
        transient_rate: 0.20,
        nan_rate: 0.05,
    };
    let surrogate = SurrogateEvaluator::new(SurrogateCalibration::mnist());
    let injector = FaultInjector::new(Box::new(surrogate), plan);
    let resilient = ResilientEvaluator::new(Box::new(injector), RetryPolicy::default());
    Searcher::with_evaluator(config, Box::new(resilient)).expect("constructible")
}

/// Runs `f` with the default panic hook silenced, restoring it after —
/// injected panics are caught by the executor, but the hook would still
/// print a backtrace per crash.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnas-fault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Surrogate wrapper that charges a work cost proportional to network
/// capacity against the deadline — big children "train longer". The cost
/// is a pure function of the architecture, so which children time out is
/// part of the deterministic trajectory.
#[derive(Debug)]
struct WeightedWork {
    inner: SurrogateEvaluator,
}

impl WeightedWork {
    fn cost(arch: &ChildArch) -> u64 {
        arch.layers()
            .iter()
            .map(|l| (l.num_filters * l.filter_size) as u64)
            .sum()
    }
}

impl AccuracyEvaluator for WeightedWork {
    fn evaluate(&self, arch: &ChildArch, rng: &mut dyn RngCore) -> FnasResult<f32> {
        self.inner.evaluate(arch, rng)
    }

    fn evaluate_with_deadline(
        &self,
        arch: &ChildArch,
        rng: &mut dyn RngCore,
        deadline: Option<&Deadline>,
    ) -> FnasResult<f32> {
        if let Some(deadline) = deadline {
            deadline
                .tick_n(WeightedWork::cost(arch))
                .map_err(|e| fnas::FnasError::Oracle {
                    what: format!("test watchdog: {e}"),
                    transient: true,
                })?;
        }
        self.evaluate(arch, rng)
    }

    fn name(&self) -> &'static str {
        "weighted-work"
    }
}

#[test]
fn armed_watchdog_times_out_the_same_children_at_every_worker_count() {
    // MNIST space: 4 layers, per-layer cost (filters · size) spans
    // 45..=504, so 4-layer totals span 180..=2016. A 800-tick budget
    // splits a sampled batch into survivors and timeouts.
    let budget = 800;
    let config = SearchConfig::nas(ExperimentPreset::mnist().with_trials(24))
        .with_seed(91)
        .with_child_deadline_ticks(Some(budget));
    let run = |workers: usize| {
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(6);
        let oracle = WeightedWork {
            inner: SurrogateEvaluator::new(SurrogateCalibration::mnist()),
        };
        Searcher::with_evaluator(&config, Box::new(oracle))
            .expect("constructible")
            .run_batched(&config, &opts)
            .expect("watchdogged run completes")
    };

    let sequential = run(0);
    assert_eq!(sequential.trials().len(), 24, "timeouts never abort a run");
    let timed_out = sequential.trials().iter().filter(|t| !t.trained).count();
    assert!(timed_out > 0, "the budget must catch some children");
    assert!(
        timed_out < 24,
        "the budget must not catch every child ({timed_out}/24)"
    );
    // A timed-out child is a failed trial: no accuracy, negative reward.
    for t in sequential.trials().iter().filter(|t| !t.trained) {
        assert!(t.accuracy.is_none());
        assert!(t.reward < 0.0);
    }
    assert_eq!(sequential.telemetry().children_failed, timed_out as u64);

    // The deadline counts logical ticks, not wall time: worker count must
    // not change which children time out, nor any downstream bit.
    for workers in [1usize, 2, 8] {
        assert_eq!(
            fingerprint(&run(workers)),
            fingerprint(&sequential),
            "workers = {workers}"
        );
    }
}

#[test]
fn chaos_run_completes_every_episode_with_finite_rewards() {
    let config = SearchConfig::nas(ExperimentPreset::mnist().with_trials(24)).with_seed(41);
    let run = |workers: usize| {
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(6);
        quietly(|| {
            chaos_searcher(&config)
                .run_batched(&config, &opts)
                .expect("chaos run completes")
        })
    };

    let sequential = run(0);
    assert_eq!(sequential.trials().len(), 24, "every episode completed");
    assert!(
        sequential.trials().iter().all(|t| t.reward.is_finite()),
        "no injected fault may leak a non-finite reward"
    );

    let t = sequential.telemetry();
    assert_eq!(t.episodes, 4);
    assert!(
        t.panics_caught + t.retries + t.quarantined + t.children_failed > 0,
        "at these rates the run must have absorbed at least one fault"
    );

    // Chaos is part of the deterministic trajectory: worker count still
    // must not change results.
    for workers in [2usize, 8] {
        assert_eq!(
            fingerprint(&run(workers)),
            fingerprint(&sequential),
            "workers = {workers}"
        );
    }
}

#[test]
fn checkpoint_resume_is_bit_identical_at_every_worker_count() {
    let dir = unique_dir("resume");
    let full = ExperimentPreset::mnist().with_trials(24);
    // Killing a process mid-run is simulated by running the same seed with
    // the trial budget truncated to 2 of 4 episodes: the trajectory prefix
    // is identical because only the loop bound differs.
    let prefix = ExperimentPreset::mnist().with_trials(12);

    for workers in [0usize, 1, 2, 8] {
        let config = SearchConfig::fnas(full.clone(), 5.0).with_seed(33);
        let opts = BatchOptions::sequential()
            .with_workers(workers)
            .with_batch_size(6);

        let reference = Searcher::surrogate(&config)
            .expect("constructible")
            .run_batched(&config, &opts)
            .expect("reference run");

        let path = dir.join(format!("ckpt-w{workers}.fnas"));
        let ckpt = CheckpointOptions::new(&path);
        let killed = SearchConfig::fnas(prefix.clone(), 5.0).with_seed(33);
        Searcher::surrogate(&killed)
            .expect("constructible")
            .run_batched_checkpointed(&killed, &opts, &ckpt)
            .expect("killed-at-k run");

        let resumed = Searcher::surrogate(&config)
            .expect("constructible")
            .resume_batched(&config, &opts, &ckpt)
            .expect("resume");

        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "workers = {workers}"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_under_chaos_is_bit_identical() {
    // The hard composition: fault injection AND checkpoint/resume. The
    // injector draws from per-child streams, so a resumed run replays the
    // exact same faults the uninterrupted run absorbs.
    let dir = unique_dir("chaos-resume");
    let full = SearchConfig::nas(ExperimentPreset::mnist().with_trials(24)).with_seed(17);
    let prefix = SearchConfig::nas(ExperimentPreset::mnist().with_trials(12)).with_seed(17);
    let opts = BatchOptions::sequential()
        .with_workers(4)
        .with_batch_size(6);

    let (reference, resumed) = quietly(|| {
        let reference = chaos_searcher(&full)
            .run_batched(&full, &opts)
            .expect("reference chaos run");

        let path = dir.join("ckpt.fnas");
        let ckpt = CheckpointOptions::new(&path);
        chaos_searcher(&prefix)
            .run_batched_checkpointed(&prefix, &opts, &ckpt)
            .expect("killed-at-k chaos run");
        let resumed = chaos_searcher(&full)
            .resume_batched(&full, &opts, &ckpt)
            .expect("chaos resume");
        (reference, resumed)
    });

    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
    let _ = std::fs::remove_dir_all(dir);
}
