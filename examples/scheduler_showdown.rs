//! FNAS-Sched vs fixed scheduling, head to head (the Fig. 8 setting).
//!
//! Enumerates the sixteen 4-layer architectures of the paper's scheduler
//! study (3×3 filters, 64 or 128 filters per layer) on a PYNQ board with
//! four accelerators, and simulates both schedulers cycle by cycle.
//!
//! Run with: `cargo run --release --example scheduler_showdown`

use fnas::report::Table;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::FpgaDevice;
use fnas_fpga::layer::{ConvShape, Network};
use fnas_fpga::sched::{FixedScheduler, FnasScheduler};
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = FpgaDevice::pynq();
    let mut table = Table::new(vec![
        "arch",
        "filters",
        "fnas-sched (cycles)",
        "fixed sched (cycles)",
        "saving",
    ]);
    let mut wins = 0usize;
    for id in 0..16u32 {
        let filters: Vec<usize> = (0..4)
            .map(|b| if id >> b & 1 == 1 { 128 } else { 64 })
            .collect();
        let mut layers = Vec::new();
        let mut prev = 3usize;
        for &f in &filters {
            layers.push(ConvShape::square(prev, f, 16, 3)?);
            prev = f;
        }
        let network = Network::new(layers)?;
        let design = PipelineDesign::generate(&network, &device)?;
        let graph = TileTaskGraph::from_design(&design)?;
        let fnas = simulate_design(&design, &graph, &FnasScheduler::new().schedule(&graph))?;
        let fixed = simulate_design(&design, &graph, &FixedScheduler::new().schedule(&graph))?;
        if fnas.makespan <= fixed.makespan {
            wins += 1;
        }
        let saving = 100.0 * (1.0 - fnas.makespan.get() as f64 / fixed.makespan.get() as f64);
        table.push_row(vec![
            (id + 1).to_string(),
            filters
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            fnas.makespan.get().to_string(),
            fixed.makespan.get().to_string(),
            format!("{saving:.2}%"),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("FNAS-Sched is at least as fast on {wins}/16 architectures");
    Ok(())
}
