//! FPGA-aware search with *real* child training.
//!
//! The paper-scale sweeps in `fnas-bench` use the calibrated accuracy
//! surrogate; this example proves the full code path instead: every
//! latency-valid child sampled by the RNN controller is genuinely trained
//! with the from-scratch engine on a synthetic MNIST-style problem, and the
//! measured validation accuracy drives the REINFORCE update through Eq. (1).
//!
//! Sized for a single CPU core: a 14×14 input, a compact search space and a
//! few hundred training examples. Expect a couple of minutes.
//!
//! Run with: `cargo run --release --example search_mnist`

use fnas::evaluator::TrainedEvaluator;
use fnas::experiment::ExperimentPreset;
use fnas::report::{pct, Table};
use fnas::search::{SearchConfig, Searcher};
use fnas_data::SynthConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CPU-sized MNIST-like problem: 5 classes on 14×14 images.
    let dataset = SynthConfig::mnist_like()
        .with_shape((1, 14, 14))
        .with_classes(5)
        .with_noise(0.2)
        .with_sizes(200, 80);

    // Keep the Table-2 MNIST *structure* (filter-size / filter-count menus)
    // but at CPU scale, and train each child for 6 epochs.
    let preset = ExperimentPreset::mnist().with_trials(8).with_epochs(6);
    // Rebind dataset + a smaller space via the trained evaluator directly.
    let space = fnas_controller::space::SearchSpace::new(3, vec![3, 5], vec![8, 16])?;
    let preset = override_preset(preset, dataset.clone(), space);

    let config = SearchConfig::fnas(preset.clone(), 4.0).with_seed(7);
    let evaluator = TrainedEvaluator::new(&dataset, preset.epochs(), 20)?.with_lr(0.2);
    let mut searcher = Searcher::with_evaluator(&config, Box::new(evaluator))?;
    let mut rng = StdRng::seed_from_u64(7);
    let outcome = searcher.run(&config, &mut rng)?;

    let mut table = Table::new(vec!["trial", "architecture", "latency", "trained accuracy"]);
    for t in outcome.trials() {
        table.push_row(vec![
            t.index.to_string(),
            t.arch.describe(),
            t.latency.map_or("—".to_string(), |l| l.to_string()),
            t.accuracy.map_or("pruned".to_string(), pct),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "trained {} children, pruned {}, modelled cost {}",
        outcome.trained_count(),
        outcome.pruned_count(),
        outcome.cost()
    );
    if let Some(best) = outcome.best() {
        println!(
            "best spec-satisfying child: {} → {}",
            best.arch.describe(),
            pct(best.accuracy.expect("trained"))
        );
    } else {
        println!("no child satisfied the 4 ms budget — try a looser spec");
    }
    Ok(())
}

/// Swaps the dataset and space of a preset (test-scale overrides).
fn override_preset(
    preset: ExperimentPreset,
    dataset: SynthConfig,
    space: fnas_controller::space::SearchSpace,
) -> ExperimentPreset {
    // ExperimentPreset is deliberately immutable; rebuild through its
    // builders. The dataset/shape/space replacement lives here so the
    // example stays honest about what it overrides.
    preset.with_dataset(dataset).with_space(space)
}
