//! The final step of Fig. 1(b): implement the chosen network and inspect
//! the implementation.
//!
//! Runs a small FPGA-aware search, then produces the deployment record for
//! the winner: per-layer tiling, resource utilization, analytic vs
//! simulated latency, and a Gantt-ready execution trace.
//!
//! Run with: `cargo run --release --example deployment`

use fnas::deploy::DeploymentReport;
use fnas::experiment::ExperimentPreset;
use fnas::search::{SearchConfig, Searcher};
use fnas_fpga::device::FpgaCluster;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = ExperimentPreset::mnist().with_trials(20);
    let config = SearchConfig::fnas(preset.clone(), 5.0).with_seed(3);
    let mut rng = StdRng::seed_from_u64(3);
    let outcome = Searcher::surrogate(&config)?.run(&config, &mut rng)?;
    let best = outcome
        .best()
        .ok_or("no spec-satisfying child found — loosen the budget")?;

    let platform = FpgaCluster::single(preset.device().clone());
    let report = DeploymentReport::generate(&best.arch, &platform, preset.dataset().shape())?;

    println!("{}\n", report.summary());
    println!("{}", report.layer_table().to_markdown());

    // The Pareto view the paper motivates: "the flexibility of FNAS
    // provides more choices for designers".
    println!("accuracy/latency Pareto front over this run:");
    for t in outcome.pareto_front() {
        println!(
            "  {} @ {} → {:.2}%",
            t.arch.describe(),
            t.latency.expect("front members have latencies"),
            t.accuracy.expect("front members are trained") * 100.0
        );
    }

    // Dump the schedule trace for external plotting, plus a ready-made
    // Gantt chart (Fig. 4(b)-style).
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join("deployment_trace.csv");
    std::fs::write(&csv_path, report.trace().to_csv())?;
    let svg_path = dir.join("deployment_gantt.svg");
    std::fs::write(
        &svg_path,
        fnas_fpga::viz::render_gantt(report.trace(), &fnas_fpga::viz::GanttOptions::default()),
    )?;
    println!(
        "\nschedule trace written to {} and {}",
        csv_path.display(),
        svg_path.display()
    );
    Ok(())
}
