//! The accuracy-vs-latency frontier under tightening timing specs.
//!
//! Repeats the FNAS search on the MNIST preset for each timing
//! specification TS1 (loosest) … TS4 (tightest) and prints how the deployed
//! architecture's latency tracks the budget while accuracy degrades only
//! mildly — the paper's central claim (Figs. 6–7).
//!
//! Run with: `cargo run --release --example pareto_sweep`

use fnas::experiment::ExperimentPreset;
use fnas::report::{pct, Table};
use fnas::search::{SearchConfig, Searcher};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = ExperimentPreset::mnist().with_trials(30);

    // The NAS baseline: accuracy-only, one architecture for all specs.
    let nas_cfg = SearchConfig::nas(preset.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let nas = Searcher::surrogate(&nas_cfg)?.run(&nas_cfg, &mut rng)?;
    let nas_best = nas.best().expect("NAS always trains children");
    println!(
        "NAS baseline: {} @ {} accuracy {}\n",
        nas_best.arch.describe(),
        nas_best.latency.map_or("?".to_string(), |l| l.to_string()),
        pct(nas_best.accuracy.expect("trained")),
    );

    let mut table = Table::new(vec![
        "spec",
        "budget",
        "deployed latency",
        "accuracy",
        "accuracy loss vs NAS",
        "children pruned",
    ]);
    for n in (1..=4).rev() {
        let ts = preset.ts(n);
        let cfg = SearchConfig::fnas(preset.clone(), ts.get());
        let mut rng = StdRng::seed_from_u64(1);
        let out = Searcher::surrogate(&cfg)?.run(&cfg, &mut rng)?;
        match out.best() {
            Some(best) => {
                let acc = best.accuracy.expect("trained");
                let loss = nas_best.accuracy.expect("trained") - acc;
                table.push_row(vec![
                    format!("TS{n}"),
                    ts.to_string(),
                    best.latency.expect("valid").to_string(),
                    pct(acc),
                    format!("{:.2}%", loss * 100.0),
                    format!("{}/{}", out.pruned_count(), out.trials().len()),
                ]);
            }
            None => table.push_row(vec![
                format!("TS{n}"),
                ts.to_string(),
                "no valid child".to_string(),
                "—".to_string(),
                "—".to_string(),
                format!("{}/{}", out.pruned_count(), out.trials().len()),
            ]),
        }
    }
    println!("{}", table.to_markdown());
    Ok(())
}
