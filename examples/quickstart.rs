//! Quickstart: the whole FNAS pipeline in one file.
//!
//! 1. Describe a child CNN.
//! 2. Push it through the FNAS tool (design → task graph → schedule →
//!    analyzer) to get its latency on a PYNQ board without training it.
//! 3. Run a small FPGA-aware search with the accuracy surrogate and print
//!    the winner.
//!
//! Run with: `cargo run --release --example quickstart`

use fnas::experiment::ExperimentPreset;
use fnas::latency::LatencyEvaluator;
use fnas::report::{pct, Table};
use fnas::search::{SearchConfig, Searcher};
use fnas_controller::arch::{ChildArch, LayerChoice};
use fnas_fpga::device::FpgaDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A hand-written child architecture -------------------------
    let arch = ChildArch::new(vec![
        LayerChoice {
            filter_size: 5,
            num_filters: 18,
        },
        LayerChoice {
            filter_size: 7,
            num_filters: 36,
        },
        LayerChoice {
            filter_size: 5,
            num_filters: 18,
        },
        LayerChoice {
            filter_size: 3,
            num_filters: 9,
        },
    ])?;
    println!("child architecture: {}", arch.describe());

    // --- 2. Latency on the PYNQ board, analytically --------------------
    let latency = LatencyEvaluator::new(FpgaDevice::pynq(), (1, 28, 28));
    let analytic = latency.latency(&arch)?;
    let simulated = latency.simulated_latency(&arch)?;
    println!("analytic latency (Eq. 5):   {analytic}");
    println!("cycle-level simulation:     {simulated}");

    // --- 3. A small FNAS search under a 5 ms budget ---------------------
    let preset = ExperimentPreset::mnist().with_trials(20);
    let config = SearchConfig::fnas(preset, 5.0);
    let mut rng = StdRng::seed_from_u64(42);
    let outcome = Searcher::surrogate(&config)?.run(&config, &mut rng)?;

    let mut table = Table::new(vec![
        "trial",
        "architecture",
        "latency",
        "accuracy",
        "reward",
    ]);
    for t in outcome.trials() {
        table.push_row(vec![
            t.index.to_string(),
            t.arch.describe(),
            t.latency.map_or("—".to_string(), |l| l.to_string()),
            t.accuracy.map_or("pruned".to_string(), pct),
            format!("{:+.3}", t.reward),
        ]);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "trained {} / pruned {} children; modelled search cost {}",
        outcome.trained_count(),
        outcome.pruned_count(),
        outcome.cost()
    );
    if let Some(best) = outcome.best() {
        println!(
            "deployed architecture: {} @ {} with accuracy {}",
            best.arch.describe(),
            best.latency.expect("best is latency-valid"),
            pct(best.accuracy.expect("best was trained")),
        );
    }
    Ok(())
}
