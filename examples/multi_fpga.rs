//! Multi-FPGA pipelines: scaling a CIFAR-sized child across a cluster.
//!
//! The paper's schedule paradigm explicitly targets multi-FPGA systems
//! ([4, 14]). This example designs the same 10-layer convolution pipeline
//! for 1, 2 and 4 PYNQ boards, showing how the design flow splits layers,
//! what the inter-board link costs per tile, and how the analytic latency
//! (Eq. 5) compares with the cycle-level simulation in each case.
//!
//! Run with: `cargo run --release --example multi_fpga`

use fnas::report::Table;
use fnas_fpga::analyzer::analyze;
use fnas_fpga::design::PipelineDesign;
use fnas_fpga::device::{FpgaCluster, FpgaDevice};
use fnas_fpga::layer::{ConvShape, Network};
use fnas_fpga::sched::FnasScheduler;
use fnas_fpga::sim::simulate_design;
use fnas_fpga::taskgraph::TileTaskGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CIFAR-10-style child: 10 layers, 3×3 kernels, growing widths.
    let widths = [24usize, 24, 36, 36, 48, 48, 48, 64, 64, 64];
    let mut layers = Vec::new();
    let mut prev = 3usize;
    for &w in &widths {
        layers.push(ConvShape::square(prev, w, 32, 3)?);
        prev = w;
    }
    let network = Network::new(layers)?;

    let mut table = Table::new(vec![
        "boards",
        "layers per board",
        "analytic latency",
        "simulated latency",
        "sim stalls (cycles)",
    ]);
    for boards in [1usize, 2, 4] {
        let cluster = FpgaCluster::homogeneous(FpgaDevice::pynq(), boards, 4.0)?;
        let design = PipelineDesign::generate_on_cluster(&network, &cluster)?;
        let graph = TileTaskGraph::from_design(&design)?;
        let schedule = FnasScheduler::new().schedule(&graph);
        let sim = simulate_design(&design, &graph, &schedule)?;
        let ana = analyze(&design)?;
        let mut per_board = vec![0usize; boards];
        for l in design.layers() {
            per_board[l.device()] += 1;
        }
        table.push_row(vec![
            boards.to_string(),
            per_board
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("+"),
            ana.latency.to_string(),
            sim.latency.to_string(),
            sim.total_stall().get().to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "More boards mean more DSPs per layer (bigger tiles, faster tasks),\n\
         at the price of per-tile link transfers at each board boundary."
    );
    Ok(())
}
