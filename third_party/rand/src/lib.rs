//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace's `[patch.crates-io]` section replaces `rand 0.8` with
//! this self-contained, std-only implementation of the API subset the FNAS
//! crates actually use:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`);
//! * [`rngs::StdRng`] and [`rngs::SmallRng`] — both xoshiro256++ behind a
//!   SplitMix64 seed expansion;
//! * [`seq::SliceRandom`] (`shuffle`, `choose`);
//! * [`Error`].
//!
//! Determinism contract: a given seed always produces the same stream, on
//! every platform and thread. The streams differ from upstream rand 0.8
//! (which uses ChaCha12 for `StdRng`); everything in this workspace that
//! depends on randomness is calibrated against *this* generator.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error`. The shimmed generators are
/// infallible, so this is only ever constructed by downstream code that
/// needs the type to exist.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand shim error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`] (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a `u64` through SplitMix64 —
    /// the same convention upstream rand uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    ///
    /// # Errors
    ///
    /// Infallible in this shim; the `Result` mirrors the upstream API.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }

    /// Creates a generator from a fixed fallback seed. The sandboxed build
    /// environment has no OS entropy hook, so unlike upstream this is
    /// deterministic; workspace code always seeds explicitly.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853C_49E6_748F_EA9B)
    }
}

/// SplitMix64: seed expander and the mixing primitive behind
/// `seed_from_u64`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                low + (high - low) * $unit(rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                low + (high - low) * $unit(rng)
            }
        }
    )*};
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits of a draw.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a draw.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl_sample_uniform_float!(f32 => unit_f32, f64 => unit_f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 — but a well-tested, fast generator with a
    /// 2^256-1 period, which is all the deterministic experiments here
    /// need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Feed the array
        /// back through [`StdRng::from_state`] to resume the stream at
        /// exactly this point. (Not part of upstream rand's API; the FNAS
        /// checkpoint/resume machinery needs it, and this shim *is* the
        /// workspace's generator.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// An all-zero state (never produced by `state()` on a seeded
        /// generator) is replaced by the same non-zero fallback
        /// `from_seed` uses, keeping the xoshiro invariant.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::from_seed([0u8; 32]);
            }
            StdRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state must not be all zero.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    /// Small-footprint generator; identical to [`StdRng`] in this shim.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn float_unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut rng;
        let x: f32 = dynr.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let _: u64 = dynr.gen();
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(77);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // An all-zero snapshot (not producible from a seeded generator)
        // still yields a working, non-degenerate generator.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
