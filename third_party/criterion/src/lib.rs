//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace's
//! `criterion` dependency resolves to this minimal harness. It supports
//! the subset the `fnas-bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`Bencher::iter`], `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports the
//! mean wall-clock time per iteration on stdout. No statistics, plots, or
//! baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for call sites using `criterion::black_box`.
pub use std::hint::black_box;

/// Measurement settings shared by a [`Criterion`] instance or group.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(300),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, &self.settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (the shim uses it as a lower bound on
    /// measured iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, &self.settings, f);
        self
    }

    /// Runs one benchmark inside the group, threading `input` through to
    /// the closure as real criterion does.
    pub fn bench_with_input<I: fmt::Display, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered directly from a parameter value.
    pub fn from_parameter<D: fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id from a function name and a parameter.
    pub fn new<D: fmt::Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, mut f: F) {
    // Warm-up & calibration: run single iterations until the warm-up
    // budget is spent, to estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < settings.warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    // Measurement: one batch sized to fill the measurement budget, but at
    // least `sample_size` iterations.
    let target = settings.measure.as_nanos().max(1);
    let iters = (target / per_iter.as_nanos().max(1))
        .clamp(settings.sample_size as u128, 10_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / iters.max(1) as u32;
    println!("bench {id:<55} {mean:>12.3?}/iter ({iters} iters)");
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function(BenchmarkId::from_parameter("p"), |b| {
                b.iter(|| black_box(1 + 1))
            });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
