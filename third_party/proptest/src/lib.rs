//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace's
//! `[patch.crates-io]` section replaces `proptest 1` with this
//! self-contained subset:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`);
//! * `Strategy` with `prop_map`, numeric range strategies, tuples,
//!   `Just`, `prop::collection::vec`, and [`prop_oneof!`];
//! * `prop_assert!` / `prop_assert_eq!` (plain assertion wrappers);
//! * `ProptestConfig` with `with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name and case index), there is
//! **no shrinking**, and failure persistence files
//! (`*.proptest-regressions`) are ignored. A failing case panics with the
//! case index so it can be replayed by re-running the test.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner plumbing used by the `proptest!` macro.

    /// Configuration mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this shim keeps the workspace's
            // heavier simulation-backed properties fast.
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Derives the RNG for one `(test, case)` pair. Stable across runs
        /// and platforms so failures are reproducible.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(h)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: bound must be positive");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F, T> Strategy for Map<S, F>
    where
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Debug, Clone)]
    pub struct Union<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Length specifications accepted by [`super::collection::vec`].
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoLen for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{IntoLen, Strategy};
    use super::test_runner::TestRng;

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length comes from `len` (a fixed `usize` or a range).
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror: `prop::collection::vec`, etc.
pub mod prop {
    pub use super::collection;
}

/// One `proptest!` block: optional `#![proptest_config(expr)]`, then test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per function,
/// looping over deterministically seeded cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // One indirection so `$body` can end without a value.
                    let mut __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Uniform choice over same-typed strategy arms. Weighted arms are not
/// supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($arm),+])
    };
}

/// Assertion wrapper (no shrinking, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assertion wrapper (no shrinking, so this is plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assertion wrapper (no shrinking, so this is plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&(1usize..=4, -1.0f32..1.0, 0u64..10), &mut rng);
            assert!((1..=4).contains(&a));
            assert!((-1.0..1.0).contains(&b));
            assert!(c < 10);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::for_case("v", 3);
        let s = prop::collection::vec(0usize..5, 1..8);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = prop::collection::vec(0usize..5, 4usize);
        assert_eq!(Strategy::generate(&fixed, &mut rng).len(), 4);
    }

    #[test]
    fn oneof_picks_every_arm() {
        let mut rng = crate::test_runner::TestRng::for_case("o", 1);
        let s = prop_oneof![Just(1usize), Just(3), Just(5)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen, [1usize, 3, 5].into_iter().collect());
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::for_case("m", 0);
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let gen = || {
            let mut rng = crate::test_runner::TestRng::for_case("d", 7);
            Strategy::generate(&prop::collection::vec(0u64..100, 5usize), &mut rng)
        };
        assert_eq!(gen(), gen());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with multiple bindings.
        #[test]
        fn macro_smoke(a in 0usize..10, b in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
        }
    }
}
