//! Cross-crate integration tests for the FNAS reproduction.
//!
//! The library target is intentionally empty; the tests live in the
//! repository-level `tests/` directory (wired up as `[[test]]` targets in
//! this package's manifest) and exercise the public APIs of every crate in
//! the workspace together.
